"""Tests for drift streams and scale-free graph streams."""

import numpy as np
import pytest

from repro.streams.distributions import ZipfKeyDistribution
from repro.streams.drift import DriftingKeyStream, head_churn
from repro.streams.graphs import EdgeStream, degree_sequences, scale_free_digraph


class TestDrift:
    def make(self, drift_fraction=0.3, epoch=5000):
        dist = ZipfKeyDistribution(1.2, 500)
        return DriftingKeyStream(
            dist, epoch_messages=epoch, drift_fraction=drift_fraction, seed=1
        )

    def test_generates_requested_length(self):
        assert self.make().generate(12_345).size == 12_345

    def test_keys_in_universe(self):
        keys = self.make().generate(20_000)
        assert keys.min() >= 0 and keys.max() < 500

    def test_deterministic(self):
        a = self.make().generate(10_000)
        b = self.make().generate(10_000)
        assert np.array_equal(a, b)

    def test_drift_changes_top_keys(self):
        keys = self.make().generate(50_000)
        churn = head_churn(keys, 5000, top=5)
        assert churn.mean() > 0.2  # the head visibly rotates

    def test_no_drift_when_fraction_zero_epochs_one(self):
        dist = ZipfKeyDistribution(1.2, 500)
        stream = DriftingKeyStream(dist, epoch_messages=10**9, seed=1)
        keys = stream.generate(30_000)
        churn = head_churn(keys, 10_000, top=5)
        assert churn.mean() < 0.5  # single identity mapping, stable head

    def test_epoch_of(self):
        s = self.make(epoch=100)
        assert s.epoch_of(0) == 0
        assert s.epoch_of(99) == 0
        assert s.epoch_of(100) == 1

    def test_invalid_args(self):
        dist = ZipfKeyDistribution(1.0, 10)
        with pytest.raises(ValueError):
            DriftingKeyStream(dist, epoch_messages=0)
        with pytest.raises(ValueError):
            DriftingKeyStream(dist, epoch_messages=10, drift_fraction=1.5)
        with pytest.raises(ValueError):
            DriftingKeyStream(dist, epoch_messages=10).generate(-1)

    def test_global_p1_diluted_vs_stationary(self):
        dist = ZipfKeyDistribution(1.5, 500)
        keys = DriftingKeyStream(
            dist, epoch_messages=5000, drift_fraction=0.5, seed=2
        ).generate(50_000)
        counts = np.bincount(keys, minlength=500)
        assert counts.max() / keys.size < dist.p1


class TestScaleFreeDigraph:
    def test_edge_count(self):
        src, dst = scale_free_digraph(10_000, seed=0)
        assert src.size == dst.size == 10_000

    def test_deterministic(self):
        a = scale_free_digraph(5000, seed=3)
        b = scale_free_digraph(5000, seed=3)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_in_degree_skewed(self):
        src, dst = scale_free_digraph(50_000, seed=1)
        _, in_deg = degree_sequences(src, dst)
        # A power-law head: the hottest node far exceeds the mean.
        assert in_deg.max() > 20 * in_deg[in_deg > 0].mean()

    def test_out_degree_skewed(self):
        src, dst = scale_free_digraph(50_000, seed=1)
        out_deg, _ = degree_sequences(src, dst)
        assert out_deg.max() > 20 * out_deg[out_deg > 0].mean()

    def test_hub_mass_near_lj_target(self):
        src, dst = scale_free_digraph(200_000, seed=1)
        _, in_deg = degree_sequences(src, dst)
        p1 = in_deg.max() / dst.size
        assert 0.001 < p1 < 0.01  # LJ's 0.29% regime

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            scale_free_digraph(0)
        with pytest.raises(ValueError):
            scale_free_digraph(10, alpha=0, beta=0, gamma=0)


class TestEdgeStream:
    def test_generate(self):
        stream = EdgeStream.generate(5000, seed=2)
        assert len(stream) == 5000

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            EdgeStream(np.array([1, 2]), np.array([1]))

    def test_from_graph_shuffles(self):
        src, dst = scale_free_digraph(5000, seed=4)
        ordered = EdgeStream.from_graph(src, dst)
        shuffled = EdgeStream.from_graph(src, dst, shuffle_seed=9)
        assert not np.array_equal(ordered.worker_keys, shuffled.worker_keys)
        assert np.array_equal(
            np.sort(ordered.worker_keys), np.sort(shuffled.worker_keys)
        )

    def test_edge_pairs_preserved_under_shuffle(self):
        src, dst = scale_free_digraph(3000, seed=5)
        stream = EdgeStream.from_graph(src, dst, shuffle_seed=6)
        original = set(zip(src.tolist(), dst.tolist()))
        shuffled = set(zip(stream.source_keys.tolist(), stream.worker_keys.tolist()))
        assert original == shuffled
