"""The deterministic sweep executor: repro.core.parallel."""

import os

import numpy as np
import pytest

from repro.core.parallel import (
    _Publication,
    clear_stream_cache,
    dataset_stream_cached,
    edge_stream_cached,
    effective_jobs,
    materialized_stream,
    parallel_map,
    resolve_jobs,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_stream_cache()
    yield
    clear_stream_cache()


class TestResolveJobs:
    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_explicit_jobs_win_over_env_number(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "7")
        assert resolve_jobs(3) == 3
        assert resolve_jobs() == 7

    def test_env_zero_forces_serial_over_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert resolve_jobs() == 1
        assert resolve_jobs(8) == 1

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "lots")
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


def _square(x):
    return x * x


def _raise_oserror(x):
    raise FileNotFoundError(f"missing {x}")


def _route_cell(cell):
    """A realistic cell: route a cached stream through a partitioner."""
    from repro.api import make_partitioner
    from repro.core.engine import route_chunked

    scheme, w, seed = cell
    keys = dataset_stream_cached("WP", 20_000, seed)
    assignments = route_chunked(keys, make_partitioner(scheme, w, seed=seed))
    return np.bincount(assignments, minlength=w).tolist()


class TestParallelMap:
    def test_preserves_order(self):
        assert parallel_map(_square, range(50), jobs=4) == [
            x * x for x in range(50)
        ]

    def test_serial_forced_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert parallel_map(_square, [3, 1, 2], jobs=4) == [9, 1, 4]

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_parallel_equals_serial_on_routing_cells(self):
        cells = [("pkg", 8, 1), ("kg", 4, 2), ("least-loaded", 8, 1),
                 ("pkg", 8, 2), ("sg", 8, 1)]
        streams = [("dataset", "WP", 20_000, 1), ("dataset", "WP", 20_000, 2)]
        serial = parallel_map(_route_cell, cells, jobs=1, streams=streams)
        parallel = parallel_map(_route_cell, cells, jobs=4, streams=streams)
        assert serial == parallel

    def test_blocked_spawn_falls_back_to_serial(self, monkeypatch):
        # BaseProcess.start is what every start-method's Process class
        # inherits (ForkProcess does NOT subclass context.Process).
        import multiprocessing.process

        import repro.core.parallel as mod

        def blocked(self, *args, **kwargs):
            raise PermissionError("process creation blocked")

        monkeypatch.setattr(
            multiprocessing.process.BaseProcess, "start", blocked
        )
        monkeypatch.setattr(mod, "_POOL_USABLE", None)
        assert parallel_map(_square, [1, 2, 3], jobs=2) == [1, 4, 9]
        # ...and the fallback is remembered as the effective width.
        assert mod.pool_usable() is False
        assert effective_jobs(4) == 1

    def test_worker_exception_propagates(self):
        # An OSError raised by the cell fn itself must not be mistaken
        # for "process creation unavailable" and silently retried.
        with pytest.raises(FileNotFoundError):
            parallel_map(_raise_oserror, [1, 2, 3], jobs=2)

    def test_effective_jobs_matches_resolution_when_pool_works(
        self, monkeypatch
    ):
        import repro.core.parallel as mod

        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        monkeypatch.setattr(mod, "_POOL_USABLE", True)
        assert effective_jobs(3) == 3
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert effective_jobs(3) == 1


class TestStreamCache:
    def test_dataset_cached_identity(self):
        a = dataset_stream_cached("WP", 15_000, 3)
        b = dataset_stream_cached("wp", 15_000, 3)
        assert a is b  # symbol normalised, one materialization

    def test_dataset_matches_direct_generation(self):
        from repro.streams.datasets import dataset_stream

        cached = dataset_stream_cached("CT", 12_000, 5)
        assert np.array_equal(cached, dataset_stream("CT", 12_000, seed=5))

    def test_edges_match_direct_generation(self):
        from repro.streams.graphs import EdgeStream

        src, dst = edge_stream_cached(5_000, 4)
        direct = EdgeStream.generate(5_000, seed=4)
        assert np.array_equal(src, direct.source_keys)
        assert np.array_equal(dst, direct.worker_keys)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown stream kind"):
            materialized_stream(("nope", 1))

    def test_publication_round_trip(self):
        key = ("dataset", "WP", 10_000, 9)
        original = materialized_stream(key)[0]
        publication = _Publication([key])
        try:
            if not publication.descriptors:
                pytest.skip("shared memory unavailable in this sandbox")
            # Re-attach the shared copy the way a worker would.
            from repro.core import parallel as mod

            mod._SHARED_DESCRIPTORS.update(publication.descriptors)
            mod._CACHE.clear()
            attached = materialized_stream(key)[0]
            assert not attached.flags.writeable
            assert np.array_equal(attached, original)
            clear_stream_cache()  # detach before the parent unlinks
        finally:
            publication.release()
