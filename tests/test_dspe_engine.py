"""Tests for the discrete-event simulation core and executors."""

import pytest

from repro.dspe import Simulator
from repro.dspe.executors import AggregatorExecutor, SpoutExecutor, Tuple_, WorkerExecutor
from repro.dspe.metrics import LatencyStats
from repro.partitioning import ShuffleGrouping


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.run_until(5.0)
        assert order == [1, 2]

    def test_clock_advances_to_end(self):
        sim = Simulator()
        sim.run_until(7.5)
        assert sim.now == 7.5

    def test_events_beyond_horizon_not_run(self):
        sim = Simulator()
        ran = []
        sim.schedule(5.0, lambda: ran.append(1))
        sim.run_until(4.0)
        assert not ran
        sim.run_until(5.0)
        assert ran

    def test_cascading_events(self):
        sim = Simulator()
        hits = []

        def recurse():
            hits.append(sim.now)
            if len(hits) < 5:
                sim.schedule(1.0, recurse)

        sim.schedule(0.0, recurse)
        sim.run_until(100.0)
        assert hits == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        sim.run_until(5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        processed = sim.run_until(100.0, max_events=3)
        assert processed == 3
        assert sim.pending_events == 7

    def test_event_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        assert sim.total_events_processed == 1


class TestLatencyStats:
    def test_mean_exact(self):
        ls = LatencyStats()
        for v in (1.0, 2.0, 3.0):
            ls.record(v)
        assert ls.mean == pytest.approx(2.0)
        assert ls.count == 3
        assert ls.max == 3.0

    def test_percentile_of_empty(self):
        assert LatencyStats().percentile(99) == 0.0

    def test_percentiles_ordered(self):
        ls = LatencyStats()
        for v in range(1000):
            ls.record(float(v))
        assert ls.percentile(50) <= ls.percentile(99)

    def test_reservoir_bounded(self):
        ls = LatencyStats(reservoir_size=100)
        for v in range(10_000):
            ls.record(float(v))
        assert len(ls._reservoir) == 100
        assert ls.count == 10_000


class TestExecutors:
    def test_spout_respects_max_pending(self):
        sim = Simulator()
        latency = LatencyStats()
        worker = WorkerExecutor(
            sim,
            spout=None,
            cpu_delay=1.0,  # very slow: acks never arrive in time
            network_delay=0.01,
            latency=latency,
            warmup=0.0,
        )
        spout = SpoutExecutor(
            sim,
            key_source=lambda: 1,
            partitioner=ShuffleGrouping(1),
            workers=[worker],
            emit_cost=0.001,
            network_delay=0.01,
            max_pending=3,
        )
        worker.spout = spout
        spout.start()
        sim.run_until(0.5)
        assert spout.in_flight <= 3
        assert spout.emitted <= 3

    def test_worker_processes_fifo_and_acks(self):
        sim = Simulator()
        latency = LatencyStats()
        worker = WorkerExecutor(
            sim,
            spout=None,
            cpu_delay=0.01,
            network_delay=0.0,
            latency=latency,
            warmup=0.0,
        )
        acks = []

        class FakeSpout:
            def on_ack(self):
                acks.append(sim.now)

        worker.spout = FakeSpout()
        worker.enqueue(Tuple_("k", 0.0))
        worker.enqueue(Tuple_("k", 0.0))
        sim.run_until(1.0)
        assert worker.processed == 2
        assert len(acks) == 2
        assert worker.counts["k"] == 2

    def test_latency_only_after_warmup(self):
        sim = Simulator()
        latency = LatencyStats()
        worker = WorkerExecutor(
            sim,
            spout=None,
            cpu_delay=0.01,
            network_delay=0.0,
            latency=latency,
            warmup=100.0,
        )

        class FakeSpout:
            def on_ack(self):
                pass

        worker.spout = FakeSpout()
        worker.enqueue(Tuple_("k", 0.0))
        sim.run_until(1.0)
        assert latency.count == 0
        assert worker.completed_after_warmup == 0

    def test_aggregator_merges_partials(self):
        sim = Simulator()
        agg = AggregatorExecutor(sim, entry_cost=0.0)
        agg.receive({"a": 2, "b": 1})
        agg.receive({"a": 3})
        assert agg.totals == {"a": 5, "b": 1}
        assert agg.received_entries == 3
        assert agg.top_k(1) == [("a", 5)]

    def test_worker_flush_ships_partials(self):
        sim = Simulator()
        latency = LatencyStats()
        agg = AggregatorExecutor(sim)
        worker = WorkerExecutor(
            sim,
            spout=None,
            cpu_delay=0.01,
            network_delay=0.0,
            latency=latency,
            warmup=0.0,
            aggregator=agg,
            flush_period=0.5,
            flush_entry_cost=0.001,
        )

        class FakeSpout:
            def on_ack(self):
                pass

        worker.spout = FakeSpout()
        for _ in range(3):
            worker.enqueue(Tuple_("w", 0.0))
        sim.run_until(2.0)
        assert agg.totals.get("w") == 3
        assert worker.memory_counters() == 0  # flushed
        assert worker.flushed_entries == 1

    def test_invalid_executor_args(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SpoutExecutor(
                sim, lambda: 1, ShuffleGrouping(1), [], emit_cost=0.0,
                network_delay=0.0, max_pending=1,
            )
        with pytest.raises(ValueError):
            WorkerExecutor(
                sim, None, cpu_delay=0.0, network_delay=0.0,
                latency=LatencyStats(), warmup=0.0,
            )
