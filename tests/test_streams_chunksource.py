"""Streaming chunk sources: byte-identity with materialised streams.

The whole point of :class:`~repro.core.chunks.ChunkSource` is that
bounded-memory streaming changes *nothing* downstream: for stationary
datasets the chunk-wise inverse-CDF draws concatenate byte-for-byte
into the same stream :meth:`DatasetSpec.stream` materialises, drift
datasets fall back to a materialised source transparently, and every
pass over a source re-emits the identical stream.  The alias-method
sampler is a deliberate exception -- deterministic under its seed and
distribution-faithful, but a *different* stream than the CDF path --
and its contract is pinned as such.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunks import ArrayChunkSource, ChunkSource
from repro.streams.datasets import DATASETS, get_dataset
from repro.streams.distributions import (
    AliasSampler,
    DistributionChunkSource,
    ZipfKeyDistribution,
)

ALL_DATASETS = sorted(DATASETS)


def collect(source):
    chunks = list(source.chunks())
    return np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)


class TestStreamByteIdentity:
    @pytest.mark.parametrize("name", ALL_DATASETS)
    def test_iter_stream_equals_stream(self, name):
        spec = get_dataset(name)
        m = 5_000
        materialized = spec.stream(m, seed=11)
        streamed = np.concatenate(
            list(spec.iter_stream(m, seed=11, chunk_size=1_024))
        )
        np.testing.assert_array_equal(streamed, materialized)

    @pytest.mark.parametrize("chunk_size", [1, 999, 4_096, 65_536])
    def test_identity_holds_on_any_chunk_grid(self, chunk_size):
        spec = get_dataset("WP")
        materialized = spec.stream(3_000, seed=5)
        source = spec.chunk_source(3_000, seed=5, chunk_size=chunk_size)
        np.testing.assert_array_equal(collect(source), materialized)

    def test_two_passes_are_identical(self):
        source = get_dataset("TW").chunk_source(4_000, seed=3, chunk_size=512)
        np.testing.assert_array_equal(collect(source), collect(source))

    def test_materialize_equals_chunks(self):
        source = get_dataset("LN1").chunk_source(2_500, seed=9, chunk_size=700)
        np.testing.assert_array_equal(source.materialize(), collect(source))

    def test_drift_dataset_falls_back_to_materialized(self):
        spec = get_dataset("CT")
        source = spec.chunk_source(2_000, seed=4, chunk_size=256)
        assert isinstance(source, ArrayChunkSource)
        np.testing.assert_array_equal(collect(source), spec.stream(2_000, seed=4))

    def test_chunk_grid_shape(self):
        source = get_dataset("WP").chunk_source(2_500, seed=1, chunk_size=1_000)
        sizes = [int(c.size) for c in source.chunks()]
        assert sizes == [1_000, 1_000, 500]


class TestArrayChunkSource:
    def test_slices_without_copy_semantics_change(self):
        keys = np.arange(100, dtype=np.int64)
        source = ArrayChunkSource(keys, chunk_size=33)
        np.testing.assert_array_equal(collect(source), keys)

    def test_reset_rewinds_mid_pass(self):
        source = ArrayChunkSource(np.arange(10, dtype=np.int64), chunk_size=4)
        rng = source.rng()
        first = source.next_chunk(rng)
        assert first.tolist() == [0, 1, 2, 3]
        source.reset()
        np.testing.assert_array_equal(collect(source), np.arange(10))

    def test_exhaustion_yields_empty(self):
        source = ArrayChunkSource(np.arange(5, dtype=np.int64), chunk_size=5)
        rng = source.rng()
        assert source.next_chunk(rng).size == 5
        assert source.next_chunk(rng).size == 0

    def test_empty_stream(self):
        source = ArrayChunkSource(np.empty(0, dtype=np.int64))
        assert collect(source).size == 0
        assert list(source.chunks()) == []


class TestValidation:
    def test_negative_length_rejected(self):
        with pytest.raises(ValueError, match="num_messages"):
            get_dataset("WP").chunk_source(-1)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ArrayChunkSource(np.arange(3, dtype=np.int64), chunk_size=0)

    def test_unknown_method_rejected(self):
        dist = ZipfKeyDistribution(1.2, 100)
        with pytest.raises(ValueError, match="method"):
            dist.chunk_source(100, method="magic")

    def test_short_sample_chunk_is_an_error(self):
        class Lying(ChunkSource):
            def sample_chunk(self, size, rng):
                return np.zeros(max(size - 1, 0), dtype=np.int64)

        source = Lying(10, chunk_size=4)
        with pytest.raises(ValueError, match="sample_chunk"):
            source.next_chunk(source.rng())

    def test_repr_names_the_grid(self):
        source = get_dataset("WP").chunk_source(500, seed=2, chunk_size=100)
        text = repr(source)
        assert "500" in text and "100" in text


class TestAliasSampler:
    def test_deterministic_under_seed(self):
        dist = ZipfKeyDistribution(1.5, 1_000)
        a = dist.alias_sampler().sample(5_000, np.random.default_rng(7))
        b = dist.alias_sampler().sample(5_000, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_distribution_faithful_on_head(self):
        # Head-key frequencies within 5 sigma of the exact binomial --
        # the alias table must encode the same measure as the CDF.
        dist = ZipfKeyDistribution(1.1, 500)
        m = 200_000
        draws = dist.alias_sampler().sample(m, np.random.default_rng(123))
        counts = np.bincount(draws, minlength=500)
        for key in range(20):
            p = dist.probabilities[key]
            sigma = np.sqrt(m * p * (1 - p))
            assert abs(counts[key] - m * p) < 5 * sigma, key

    def test_one_uniform_per_draw(self):
        # Alias consumes exactly `size` uniforms: the next draw from
        # the same generator matches a fresh generator advanced by m.
        dist = ZipfKeyDistribution(1.3, 64)
        rng = np.random.default_rng(5)
        dist.alias_sampler().sample(1_000, rng)
        tail = rng.random(4)
        fresh = np.random.default_rng(5)
        fresh.random(1_000)
        np.testing.assert_array_equal(tail, fresh.random(4))

    def test_alias_source_differs_from_cdf_but_same_support(self):
        dist = ZipfKeyDistribution(1.4, 200)
        cdf = collect(dist.chunk_source(3_000, seed=8, method="cdf"))
        alias = collect(dist.chunk_source(3_000, seed=8, method="alias"))
        assert not np.array_equal(cdf, alias)
        assert alias.min() >= 0 and alias.max() < 200

    def test_degenerate_single_key(self):
        sampler = AliasSampler([1.0])
        out = sampler.sample(100, np.random.default_rng(0))
        assert np.all(out == 0)

    def test_rejects_bad_mass(self):
        with pytest.raises(ValueError):
            AliasSampler([])
        with pytest.raises(ValueError):
            AliasSampler([0.0, 0.0])
        with pytest.raises(ValueError):
            AliasSampler([0.5, -0.5])

    @given(
        exponent=st.floats(min_value=0.0, max_value=2.5),
        num_keys=st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_draws_stay_in_range(self, exponent, num_keys):
        dist = ZipfKeyDistribution(exponent, num_keys)
        out = dist.alias_sampler().sample(256, np.random.default_rng(1))
        assert out.dtype == np.int64
        assert out.min() >= 0 and out.max() < num_keys

    def test_chunked_alias_source_deterministic(self):
        dist = ZipfKeyDistribution(1.2, 128)
        src = dist.chunk_source(2_000, seed=6, chunk_size=333, method="alias")
        assert isinstance(src, DistributionChunkSource)
        np.testing.assert_array_equal(collect(src), collect(src))
