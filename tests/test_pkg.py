"""Tests for PARTIAL KEY GROUPING (the core contribution)."""

import numpy as np
import pytest

from repro.hashing import HashFamily
from repro.load import (
    GlobalOracleEstimator,
    LocalLoadEstimator,
    ProbingLoadEstimator,
    WorkerLoadRegistry,
)
from repro.partitioning import KeyGrouping, PartialKeyGrouping
from repro.simulation import simulate_stream
from repro.streams.distributions import ZipfKeyDistribution


def skewed_keys(m=50_000, exponent=1.0, num_keys=5000, seed=0):
    """A skewed stream inside PKG's feasibility region (p1 ~ 10.5%)."""
    return ZipfKeyDistribution(exponent, num_keys).sample(
        m, np.random.default_rng(seed)
    )


class TestKeySplitting:
    def test_route_always_within_candidates(self):
        pkg = PartialKeyGrouping(10, seed=1)
        for k in range(500):
            assert pkg.route(k) in pkg.candidates(k)

    def test_key_split_across_at_most_two_workers(self):
        pkg = PartialKeyGrouping(10, seed=2)
        keys = skewed_keys(20_000)
        routed = pkg.route_chunk(keys)
        for key in np.unique(keys)[:100]:
            used = set(routed[keys == key].tolist())
            assert used <= set(pkg.candidates(int(key)))
            assert len(used) <= 2

    def test_hot_key_actually_splits(self):
        pkg = PartialKeyGrouping(10, seed=3)
        hot = next(k for k in range(10) if len(set(pkg.candidates(k))) == 2)
        used = {pkg.route(hot) for _ in range(100)}
        assert len(used) == 2  # both choices used -> "power of both choices"

    def test_candidates_shared_across_sources_with_same_seed(self):
        a = PartialKeyGrouping(10, seed=9)
        b = PartialKeyGrouping(10, seed=9)
        assert all(a.candidates(k) == b.candidates(k) for k in range(300))

    def test_num_choices_d(self):
        pkg = PartialKeyGrouping(10, num_choices=3, seed=0)
        assert all(len(pkg.candidates(k)) == 3 for k in range(50))

    def test_family_size_mismatch_rejected(self):
        family = HashFamily(size=3, seed=0)
        with pytest.raises(ValueError):
            PartialKeyGrouping(10, num_choices=2, hash_family=family)


class TestLoadBalance:
    def test_beats_key_grouping_on_skew(self):
        keys = skewed_keys()
        pkg = simulate_stream(keys, PartialKeyGrouping(10, seed=0))
        kg = simulate_stream(keys, KeyGrouping(10, seed=0))
        assert pkg.average_imbalance < kg.average_imbalance / 5

    def test_near_perfect_in_feasible_regime(self):
        # p1 ~ 2.5% with W=5 is deep inside the feasibility region.
        keys = ZipfKeyDistribution(0.9, 10_000).sample(
            50_000, np.random.default_rng(1)
        )
        result = simulate_stream(keys, PartialKeyGrouping(5, seed=0))
        assert result.final_imbalance_fraction < 1e-3

    def test_greedy_choice_follows_estimates(self):
        reg = WorkerLoadRegistry(4)
        reg.add(0, 100)
        pkg = PartialKeyGrouping(
            4, estimator=GlobalOracleEstimator(reg), seed=0
        )
        key = next(
            k for k in range(100) if set(pkg.candidates(k)) == {0, 1}
        )
        assert pkg.route(key) == 1  # avoids the loaded candidate


class TestFastPath:
    def test_fast_path_matches_generic_route(self):
        keys = skewed_keys(5000)
        fast = PartialKeyGrouping(8, seed=4)
        slow = PartialKeyGrouping(8, seed=4)
        fast_routes = fast.route_chunk(keys)
        slow_routes = np.array([slow.route(int(k)) for k in keys])
        assert np.array_equal(fast_routes, slow_routes)

    def test_fast_path_matches_generic_route_d3(self):
        keys = skewed_keys(5000)
        fast = PartialKeyGrouping(8, num_choices=3, seed=4)
        slow = PartialKeyGrouping(8, num_choices=3, seed=4)
        assert np.array_equal(
            fast.route_chunk(keys), np.array([slow.route(int(k)) for k in keys])
        )

    def test_fast_path_mirrors_registry(self):
        reg = WorkerLoadRegistry(6)
        pkg = PartialKeyGrouping(6, registry=reg, seed=0)
        keys = skewed_keys(3000)
        routed = pkg.route_chunk(keys)
        assert np.array_equal(
            reg.loads, np.bincount(routed, minlength=6)
        )

    def test_string_keys_fall_back_to_generic(self):
        pkg = PartialKeyGrouping(5, seed=0)
        words = np.array(["a", "b", "a", "c", "a"])
        routed = pkg.route_chunk(words)
        assert routed.size == 5
        assert all(r in pkg.candidates(w) for r, w in zip(routed, words))

    def test_probing_estimator_path(self):
        reg = WorkerLoadRegistry(4)
        est = ProbingLoadEstimator(4, reg, period=100.0)
        pkg = PartialKeyGrouping(4, estimator=est, seed=0)
        keys = skewed_keys(2000)
        times = np.arange(2000, dtype=np.float64)
        routed = pkg.route_chunk(keys, times)
        assert routed.size == 2000
        assert est.probes >= 1


class TestStatefulness:
    def test_estimator_accumulates(self):
        pkg = PartialKeyGrouping(4, seed=0)
        pkg.route(1)
        pkg.route(1)
        assert pkg.estimator.local.sum() == 2

    def test_reset_clears_estimator(self):
        pkg = PartialKeyGrouping(4, seed=0)
        pkg.route(1)
        pkg.reset()
        assert pkg.estimator.local.sum() == 0

    def test_no_routing_table(self):
        pkg = PartialKeyGrouping(4, seed=0)
        for k in range(1000):
            pkg.route(k)
        assert pkg.memory_entries() == 0  # PKG keeps no per-key state

    def test_adapts_to_drift(self):
        # A key that cools down stops dominating its candidates: the
        # estimator is dynamic, unlike static PoTC.
        pkg = PartialKeyGrouping(2, seed=1)
        for _ in range(100):
            pkg.route(0)
        loads_before = pkg.estimator.local.copy()
        for k in range(1, 101):
            pkg.route(k)
        assert pkg.estimator.local.min() > loads_before.min()
