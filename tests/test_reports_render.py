"""EXPERIMENTS.md renderer: golden file, determinism, staleness."""

from pathlib import Path

import pytest

from repro.reports import (
    is_stale,
    load_artifacts,
    render_markdown,
    render_to_file,
)

DATA = Path(__file__).parent / "data"


@pytest.fixture()
def fixture_artifacts():
    return load_artifacts(DATA)


class TestGolden:
    def test_matches_golden_file(self, fixture_artifacts):
        golden = (DATA / "golden_experiments.md").read_text()
        assert render_markdown(fixture_artifacts) == golden

    def test_render_is_deterministic(self, fixture_artifacts):
        assert render_markdown(fixture_artifacts) == render_markdown(
            fixture_artifacts
        )

    def test_golden_content_includes_table_and_provenance(self, fixture_artifacts):
        md = render_markdown(fixture_artifacts)
        assert "## Table II" in md
        assert "Scheme  WP W=5  WP W=10" in md  # re-rendered paper table
        assert "`fixture000`" in md  # git sha from the manifest
        assert "hash_over_pkg_geomean[WP]" in md  # headline summary


class TestRenderToFile:
    def test_write_and_freshness(self, fixture_artifacts, tmp_path):
        out = tmp_path / "EXPERIMENTS.md"
        assert is_stale(fixture_artifacts, out)  # missing -> stale
        render_to_file(fixture_artifacts, out)
        assert not is_stale(fixture_artifacts, out)
        out.write_text(out.read_text() + "manual edit\n")
        assert is_stale(fixture_artifacts, out)

    def test_empty_artifact_set_rejected(self):
        with pytest.raises(ValueError, match="no artifacts"):
            render_markdown({})


class TestUnknownExperiment:
    def test_unknown_harness_renders_summary_only(self, fixture_artifacts):
        from repro.reports import ExperimentArtifact

        artifact = fixture_artifacts["table2"]
        custom = ExperimentArtifact(
            experiment="my-extension",
            paper_section="Extension",
            manifest=artifact.manifest,
            records=[{"x": 1}],
            summary={"speedup": 2.0},
            metrics=[],
        )
        md = render_markdown({**fixture_artifacts, "my-extension": custom})
        assert "## Extension — my-extension" in md
        assert "`speedup`" in md
        # Known harness sections still render before unknown extras.
        assert md.index("## Table II") < md.index("## Extension")
