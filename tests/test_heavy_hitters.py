"""Tests for distributed heavy hitters (Section VI-C)."""

import numpy as np
import pytest

from repro.applications import DistributedHeavyHitters, exact_top_k
from repro.partitioning import KeyGrouping, PartialKeyGrouping, ShuffleGrouping
from repro.streams.distributions import ZipfKeyDistribution


def stream(m=20_000, seed=0):
    return ZipfKeyDistribution(1.2, 2000).sample(
        m, np.random.default_rng(seed)
    ).tolist()


class TestTracking:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: KeyGrouping(6),
            lambda: ShuffleGrouping(6),
            lambda: PartialKeyGrouping(6),
        ],
        ids=["KG", "SG", "PKG"],
    )
    def test_recovers_true_top_k(self, make):
        items = stream()
        hh = DistributedHeavyHitters(make(), capacity=256)
        hh.process_stream(items)
        found = {k for k, _ in hh.top_k(10)}
        truth = {k for k, _ in exact_top_k(items, 10)}
        assert len(found & truth) >= 9

    def test_estimates_upper_bound_truth_for_heavy_items(self):
        items = stream()
        hh = DistributedHeavyHitters(PartialKeyGrouping(6), capacity=256)
        hh.process_stream(items)
        truth = dict(exact_top_k(items, 20))
        for item, true_count in truth.items():
            assert hh.estimate(item) >= true_count * 0.95

    def test_error_within_bound(self):
        items = stream()
        hh = DistributedHeavyHitters(PartialKeyGrouping(6), capacity=256)
        hh.process_stream(items)
        truth = dict(exact_top_k(items, 50))
        for item, true_count in truth.items():
            est = hh.estimate(item)
            assert est - true_count <= hh.error_bound(item)


class TestProbeCosts:
    def test_kg_probes_one(self):
        hh = DistributedHeavyHitters(KeyGrouping(8), capacity=16)
        hh.process_stream(stream(1000))
        assert all(hh.summaries_probed(k) == 1 for k in range(20))

    def test_pkg_probes_at_most_two(self):
        hh = DistributedHeavyHitters(PartialKeyGrouping(8), capacity=16)
        hh.process_stream(stream(1000))
        assert all(1 <= hh.summaries_probed(k) <= 2 for k in range(20))

    def test_sg_probes_all(self):
        hh = DistributedHeavyHitters(ShuffleGrouping(8), capacity=16)
        hh.process_stream(stream(1000))
        assert hh.summaries_probed(0) == 8

    def test_pkg_error_bound_independent_of_w(self):
        # Section VI-C: PKG's per-item error involves two summaries
        # regardless of W; SG's involves all W.
        items = stream()
        for W in (4, 16):
            pkg = DistributedHeavyHitters(PartialKeyGrouping(W), capacity=64)
            sg = DistributedHeavyHitters(ShuffleGrouping(W), capacity=64)
            pkg.process_stream(items)
            sg.process_stream(items)
            hot = exact_top_k(items, 1)[0][0]
            assert pkg.summaries_probed(hot) <= 2
            assert sg.summaries_probed(hot) == W


class TestBalanceAndMerge:
    def test_pkg_load_below_kg(self):
        items = stream(30_000)
        kg = DistributedHeavyHitters(KeyGrouping(8), capacity=64)
        pkg = DistributedHeavyHitters(PartialKeyGrouping(8), capacity=64)
        kg.process_stream(items)
        pkg.process_stream(items)
        assert pkg.load_imbalance() < kg.load_imbalance()

    def test_merged_summary_total(self):
        items = stream(5000)
        hh = DistributedHeavyHitters(PartialKeyGrouping(4), capacity=64)
        hh.process_stream(items)
        assert hh.merged_summary().total == 5000

    def test_worker_loads_conserve(self):
        items = stream(5000)
        hh = DistributedHeavyHitters(ShuffleGrouping(4), capacity=64)
        hh.process_stream(items)
        assert sum(hh.worker_loads) == 5000
