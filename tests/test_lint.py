"""Tests for repro.lint: rules, suppressions, engine, and CLI.

Fixture files under ``tests/data/lint/`` carry known-good and
known-bad snippets per rule; the assertions here pin exact rule ids
and line numbers so a rule regression cannot pass silently.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, PARSE_ERROR, Finding, lint_file, lint_paths
from repro.lint.engine import DEFAULT_EXCLUDED_DIRS, iter_lintable_files
from repro.lint.suppressions import SuppressionIndex

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "data" / "lint"


def hits(path, rule=None):
    """(rule, line) pairs from linting ``path``, optionally one rule."""
    findings = lint_file(str(path))
    if rule is not None:
        findings = [f for f in findings if f.rule == rule]
    return [(f.rule, f.line) for f in findings]


class TestRuleTable:
    def test_ids_are_unique_and_ordered(self):
        ids = [rule.id for rule in ALL_RULES]
        assert ids == sorted(set(ids))
        assert ids == [
            "REPRO001",
            "REPRO002",
            "REPRO003",
            "REPRO004",
            "REPRO005",
            "REPRO006",
        ]

    def test_every_rule_documents_itself(self):
        for rule in ALL_RULES:
            assert rule.name and rule.description


class TestRepro001:
    def test_bad_fixture_lines(self):
        assert hits(FIXTURES / "repro001_bad.py") == [
            ("REPRO001", 10),  # default_rng() no seed
            ("REPRO001", 14),  # RandomState() no seed
            ("REPRO001", 18),  # np.random.rand
            ("REPRO001", 22),  # np.random.seed
            ("REPRO001", 26),  # random.random
            ("REPRO001", 30),  # random.choice
            ("REPRO001", 34),  # default_rng() via from-import
        ]

    def test_good_fixture_is_clean(self):
        assert hits(FIXTURES / "repro001_good.py") == []


class TestRepro002:
    def test_bad_fixture_lines(self):
        assert hits(FIXTURES / "core" / "repro002_bad.py") == [
            ("REPRO002", 9),  # builtin hash()
            ("REPRO002", 13),  # time.time
            ("REPRO002", 17),  # perf_counter via from-import
            ("REPRO002", 21),  # datetime.now
        ]

    def test_good_fixture_is_clean(self):
        assert hits(FIXTURES / "core" / "repro002_good.py") == []

    def test_runtime_is_a_hot_path(self):
        # The sharded runtime joined HOT_PATH_PARTS: bare clock reads
        # under a runtime/ directory are flagged...
        assert hits(FIXTURES / "runtime" / "repro002_bad.py") == [
            ("REPRO002", 9),  # time.perf_counter, no sign-off
            ("REPRO002", 13),  # perf_counter via from-import
            ("REPRO002", 19),  # coalesced-flush stamp, no sign-off
        ]

    def test_runtime_suppressions_and_sleep_pass(self):
        # ...while noqa-signed stamps and time.sleep stay clean.
        assert hits(FIXTURES / "runtime" / "repro002_good.py") == []

    def test_rule_only_applies_on_hot_paths(self, tmp_path):
        # Same impurities outside a hot-path directory are not flagged.
        src = (FIXTURES / "core" / "repro002_bad.py").read_text()
        cold = tmp_path / "harness" / "bench.py"
        cold.parent.mkdir()
        cold.write_text(src)
        assert hits(cold) == []


class TestRepro003:
    def test_bad_fixture_lines(self):
        assert hits(FIXTURES / "repro003_bad.py") == [
            ("REPRO003", 8),  # no route_chunk
            ("REPRO003", 18),  # wrong signature
            ("REPRO003", 30),  # revived route_stream
        ]

    def test_good_fixture_is_clean(self):
        # Conforming scheme passes; unregistered class is out of scope.
        assert hits(FIXTURES / "repro003_good.py") == []


class TestRepro004:
    def test_bad_fixture_lines(self):
        assert hits(FIXTURES / "repro004_bad.py") == [
            ("REPRO004", 10),  # lambda to parallel_map
            ("REPRO004", 17),  # closure to parallel_map
            ("REPRO004", 21),  # lambda as Process target
            ("REPRO004", 28),  # closure as Process target
        ]

    def test_good_fixture_is_clean(self):
        assert hits(FIXTURES / "repro004_good.py") == []


class TestRepro005:
    def test_bad_fixture_lines(self):
        assert hits(FIXTURES / "repro005_bad.py") == [
            ("REPRO005", 8),  # typo'd scheme
            ("REPRO005", 12),  # unknown parameter
            ("REPRO005", 16),  # resolve_scheme_name typo
            ("REPRO005", 20),  # run(...) facade typo
            ("REPRO005", 24),  # kill fault with a parameter
            ("REPRO005", 29),  # FaultPlan.parse literal with bad trigger
        ]

    def test_good_fixture_is_clean(self):
        assert hits(FIXTURES / "repro005_good.py") == []

    def test_markdown_specs(self):
        # Scheme typos flag; fault specs route through the --fault
        # grammar, so the valid chaos recipe on line 14 passes and only
        # the malformed one on line 15 flags.
        assert hits(FIXTURES / "specs_bad.md") == [
            ("REPRO005", 9),
            ("REPRO005", 10),
            ("REPRO005", 15),
        ]

    def test_messages_name_the_registry(self):
        findings = lint_file(str(FIXTURES / "repro005_bad.py"))
        assert "pkg" in findings[0].message  # known schemes listed
        assert "valid parameters" in findings[1].message


class TestRepro006:
    def test_bad_fixture_lines(self):
        assert hits(FIXTURES / "runtime" / "repro006_bad.py") == [
            ("REPRO006", 7),  # bare Process.join()
            ("REPRO006", 11),  # bare Queue.get()
            ("REPRO006", 15),  # bare Connection.recv()
            ("REPRO006", 19),  # while True with no exit
            ("REPRO006", 25),  # while 1 with no exit
        ]

    def test_good_fixture_is_clean(self):
        assert (
            hits(FIXTURES / "runtime" / "repro006_good.py", rule="REPRO006")
            == []
        )

    def test_rule_only_fires_under_runtime_dirs(self, tmp_path):
        # The same bare join() outside a runtime directory is out of
        # scope -- the deadline contract belongs to the runtime.
        snippet = tmp_path / "elsewhere.py"
        snippet.write_text("def f(p):\n    p.join()\n")
        assert hits(snippet, rule="REPRO006") == []

    def test_runtime_sources_comply(self):
        # The contract the rule enforces must hold for the runtime
        # package itself, with zero suppressions needed for blocking
        # primitives (REPRO002 wall-clock noqas are separate).
        runtime_dir = REPO_ROOT / "src" / "repro" / "runtime"
        for path in sorted(runtime_dir.glob("*.py")):
            assert hits(path, rule="REPRO006") == [], path.name


class TestSuppressions:
    def test_fixture_noqa_behaviour(self):
        # bare noqa, scoped noqa and multi-rule noqa all suppress;
        # a noqa for the *wrong* rule does not.
        assert hits(FIXTURES / "suppressed.py") == [("REPRO001", 23)]

    def test_index_parses_rule_lists(self):
        idx = SuppressionIndex(
            "x = 1  # repro: noqa\n"
            "y = 2  # repro: noqa[REPRO001, REPRO004]\n"
        )
        blanket = Finding(path="f", line=1, col=1, rule="REPRO999", message="m")
        scoped_hit = Finding(path="f", line=2, col=1, rule="REPRO004", message="m")
        scoped_miss = Finding(path="f", line=2, col=1, rule="REPRO002", message="m")
        assert idx.is_suppressed(blanket)
        assert idx.is_suppressed(scoped_hit)
        assert not idx.is_suppressed(scoped_miss)

    def test_parse_errors_are_never_suppressed(self):
        idx = SuppressionIndex("bad syntax  # repro: noqa\n")
        err = Finding(path="f", line=1, col=1, rule=PARSE_ERROR, message="m")
        assert not idx.is_suppressed(err)


class TestEngine:
    def test_syntax_error_yields_parse_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        findings = lint_file(str(broken))
        assert [f.rule for f in findings] == [PARSE_ERROR]

    def test_walker_skips_data_dirs(self):
        # `python -m repro.lint src tests` must not trip over this
        # fixture corpus: dirs named "data" are pruned while walking...
        assert "data" in DEFAULT_EXCLUDED_DIRS
        walked = list(iter_lintable_files([str(REPO_ROOT / "tests")]))
        assert not any("data" in Path(p).parts for p in walked)

    def test_explicit_paths_beat_exclusion(self):
        # ...but passing the corpus explicitly lints it.
        walked = list(iter_lintable_files([str(FIXTURES)]))
        assert any(p.endswith("repro001_bad.py") for p in walked)
        assert any(p.endswith("specs_bad.md") for p in walked)

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            list(iter_lintable_files(["no/such/path"]))

    def test_select_filters_rules(self):
        findings = lint_paths([str(FIXTURES)], select=["REPRO004"])
        assert findings and all(f.rule == "REPRO004" for f in findings)

    def test_ignore_filters_rules(self):
        findings = lint_paths([str(FIXTURES)], ignore=["REPRO001", "REPRO005"])
        assert findings
        assert not any(f.rule in ("REPRO001", "REPRO005") for f in findings)

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="REPRO9"):
            lint_paths([str(FIXTURES)], select=["REPRO9"])

    def test_findings_sorted_and_formatted(self):
        findings = lint_paths([str(FIXTURES)])
        assert findings == sorted(findings)
        line = findings[0].format()
        assert findings[0].path in line and findings[0].rule in line

    def test_repo_is_lint_clean(self):
        # The merge gate: src + tests (fixtures pruned) have no findings.
        findings = lint_paths([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
        assert findings == []


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestCli:
    def test_clean_tree_exits_zero(self):
        proc = run_cli("src", "tests")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_fixture_corpus_exits_one_with_all_rules(self):
        proc = run_cli("tests/data/lint")
        assert proc.returncode == 1
        for rule_id in (
            "REPRO001",
            "REPRO002",
            "REPRO003",
            "REPRO004",
            "REPRO005",
            "REPRO006",
        ):
            assert rule_id in proc.stdout

    def test_json_format(self):
        proc = run_cli("tests/data/lint", "--format", "json", "--select", "REPRO004")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert [(f["rule"], f["line"]) for f in payload] == [
            ("REPRO004", 10),
            ("REPRO004", 17),
            ("REPRO004", 21),
            ("REPRO004", 28),
        ]
        assert all(set(f) == {"path", "line", "col", "rule", "message"} for f in payload)

    def test_unknown_rule_is_usage_error(self):
        proc = run_cli("src", "--select", "NOPE01")
        assert proc.returncode == 2
        assert "NOPE01" in proc.stderr

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for rule in ALL_RULES:
            assert rule.id in proc.stdout
