"""Tests for simulation metrics (imbalance, series, Jaccard, memory)."""

import numpy as np
import pytest

from repro.simulation.metrics import (
    agreement_fraction,
    average_imbalance,
    count_partial_states,
    imbalance,
    imbalance_fraction,
    jaccard_overlap,
    load_series,
    replication_factor,
)


class TestImbalance:
    def test_definition(self):
        assert imbalance([10, 0, 2]) == pytest.approx(10 - 4.0)

    def test_balanced_is_zero(self):
        assert imbalance([5, 5, 5]) == 0.0

    def test_single_worker_zero(self):
        assert imbalance([7]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            imbalance([])

    def test_fraction(self):
        assert imbalance_fraction([10, 0, 2]) == pytest.approx(6.0 / 12.0)

    def test_fraction_empty_loads(self):
        assert imbalance_fraction([0, 0]) == 0.0


class TestLoadSeries:
    def test_checkpoint_positions_end_at_stream(self):
        workers = np.array([0, 1, 0, 1, 0, 1, 0, 1])
        positions, series = load_series(workers, 2, num_checkpoints=4)
        assert positions[-1] == 8
        assert series[-1] == 0.0

    def test_series_matches_prefix_imbalance(self):
        workers = np.array([0, 0, 0, 1, 1, 2])
        positions, series = load_series(workers, 3, num_checkpoints=6)
        for pos, value in zip(positions, series):
            loads = np.bincount(workers[:pos], minlength=3)
            assert value == pytest.approx(loads.max() - loads.mean())

    def test_empty_stream(self):
        positions, series = load_series(np.array([], dtype=np.int64), 2)
        assert positions.size == 0 and series.size == 0

    def test_more_checkpoints_than_messages(self):
        workers = np.array([0, 1, 1])
        positions, _ = load_series(workers, 2, num_checkpoints=100)
        assert positions.size <= 3

    def test_average_imbalance(self):
        workers = np.array([0] * 10)
        assert average_imbalance(workers, 2, num_checkpoints=5) > 0

    def test_unused_workers_count_toward_mean(self):
        workers = np.zeros(10, dtype=np.int64)
        _, series = load_series(workers, 5, num_checkpoints=1)
        assert series[0] == pytest.approx(10 - 2.0)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            load_series(np.array([0]), 0)


class TestJaccard:
    def test_identical_routings(self):
        a = np.array([0, 1, 2])
        assert jaccard_overlap(a, a) == 1.0

    def test_disjoint_routings(self):
        assert jaccard_overlap(np.array([0, 0]), np.array([1, 1])) == 0.0

    def test_half_agreement(self):
        a = np.array([0, 0])
        b = np.array([0, 1])
        # 1 agreement of 2 messages: J = 1 / (4 - 1) = 1/3
        assert jaccard_overlap(a, b) == pytest.approx(1 / 3)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.integers(0, 5, 100), rng.integers(0, 5, 100)
        assert jaccard_overlap(a, b) == jaccard_overlap(b, a)

    def test_empty(self):
        e = np.array([], dtype=np.int64)
        assert jaccard_overlap(e, e) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            jaccard_overlap(np.array([0]), np.array([0, 1]))

    def test_agreement_fraction(self):
        a = np.array([0, 1, 2, 3])
        b = np.array([0, 1, 0, 0])
        assert agreement_fraction(a, b) == pytest.approx(0.5)


class TestPartialStates:
    def test_key_grouping_one_state_per_key(self):
        keys = np.array([0, 1, 0, 2, 1])
        workers = np.array([3, 4, 3, 0, 4])  # consistent per key
        assert count_partial_states(keys, workers) == 3

    def test_split_key_counts_twice(self):
        keys = np.array([7, 7, 7])
        workers = np.array([0, 1, 0])
        assert count_partial_states(keys, workers) == 2

    def test_empty(self):
        e = np.array([], dtype=np.int64)
        assert count_partial_states(e, e) == 0

    def test_string_keys(self):
        keys = np.array(["a", "b", "a"])
        workers = np.array([0, 0, 1])
        assert count_partial_states(keys, workers) == 3

    def test_replication_factor_bounds(self):
        keys = np.array([0, 0, 1, 1])
        workers = np.array([0, 1, 2, 2])
        # key 0 on 2 workers, key 1 on 1: average 1.5
        assert replication_factor(keys, workers) == pytest.approx(1.5)

    def test_replication_empty(self):
        e = np.array([], dtype=np.int64)
        assert replication_factor(e, e) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            count_partial_states(np.array([0]), np.array([0, 1]))
