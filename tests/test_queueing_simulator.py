"""Behavioral tests for the queueing simulator, arrivals, and JBSQ."""

import numpy as np
import pytest

from repro.api import make_partitioner
from repro.partitioning import JoinBoundedShortestQueue
from repro.queueing import (
    BimodalService,
    DeterministicArrivals,
    DeterministicService,
    ExponentialService,
    PoissonArrivals,
    TraceArrivals,
    simulate_queueing,
)


def run(partitioner, n=5_000, rho=0.8, seed=7, **kwargs):
    mu = 1000.0
    lam = rho * partitioner.num_workers * mu
    keys = np.arange(n, dtype=np.int64) % 97
    return simulate_queueing(
        keys,
        partitioner,
        PoissonArrivals(lam),
        ExponentialService(1.0 / mu),
        seed=seed,
        **kwargs,
    )


class TestConservation:
    def test_every_message_completes_or_drops(self):
        result = run(make_partitioner("sg", 4))
        assert result.completed == result.num_messages
        assert result.dropped == 0

    def test_bounded_queues_drop_and_account(self):
        # deterministic arrivals at 2x a single worker's capacity: kg on
        # one worker must drop roughly half once the 4-slot queue fills.
        p = make_partitioner("kg", 1)
        n = 2_000
        result = simulate_queueing(
            np.zeros(n, dtype=np.int64),
            p,
            DeterministicArrivals(2000.0),
            DeterministicService(1.0 / 1000.0),
            seed=3,
            queue_capacity=4,
        )
        assert result.completed + result.dropped == n
        assert result.dropped == pytest.approx(n / 2, rel=0.02)
        assert result.dropped_per_worker.sum() == result.dropped
        # bounded queue means bounded sojourn: at most 4 services + own.
        assert result.latency.max <= 5 * (1.0 / 1000.0) + 1e-9

    def test_warmup_excluded_from_sketch(self):
        full = run(make_partitioner("sg", 2), n=2_000)
        trimmed = run(make_partitioner("sg", 2), n=2_000, warmup_fraction=0.25)
        assert full.latency.count == 2_000
        assert trimmed.latency.count == 1_500
        assert trimmed.warmup_messages == 500

    def test_determinism_same_seed(self):
        a = run(make_partitioner("pkg", 4, seed=1))
        b = run(make_partitioner("pkg", 4, seed=1))
        assert a.latency.to_dict() == b.latency.to_dict()
        assert a.end_time == b.end_time
        assert np.array_equal(a.busy_time, b.busy_time)

    def test_worker_sketches_merge_to_cluster_sketch(self):
        result = run(make_partitioner("sg", 4))
        assert (
            sum(s.count for s in result.worker_latency)
            == result.latency.count
        )
        assert result.waiting.count == result.latency.count

    def test_utilization_tracks_offered_load(self):
        result = run(make_partitioner("sg", 4), n=40_000, rho=0.6)
        assert result.utilization == pytest.approx(0.6, abs=0.03)

    def test_invalid_inputs_rejected(self):
        p = make_partitioner("sg", 2)
        with pytest.raises(ValueError):
            run(p, queue_capacity=0)
        with pytest.raises(ValueError):
            run(p, warmup_fraction=1.0)


class TestTraceArrivals:
    def test_replays_trace_gaps(self):
        trace = [0.5, 1.5, 3.5, 6.5]
        rng = np.random.default_rng(0)
        times = TraceArrivals(trace).arrival_times(4, rng)
        assert times == pytest.approx(trace)

    def test_rescales_to_target_rate(self):
        trace = [0.0, 1.0, 3.0, 6.0]  # natural rate 0.5/s
        arr = TraceArrivals(trace, rate=5.0)
        rng = np.random.default_rng(0)
        times = arr.arrival_times(400, rng)
        measured = (times.size - 1) / (times[-1] - times[0])
        assert measured == pytest.approx(5.0, rel=0.05)

    def test_tiles_beyond_trace_length(self):
        trace = [0.0, 1.0, 2.0]
        rng = np.random.default_rng(0)
        times = TraceArrivals(trace).arrival_times(10, rng)
        assert times.size == 10
        assert bool(np.all(np.diff(times) > 0))

    def test_rejects_descending_trace(self):
        with pytest.raises(ValueError):
            TraceArrivals([0.0, 2.0, 1.0])


class TestBimodalService:
    def test_moments_match_samples(self):
        service = BimodalService(fast=0.001, slow=0.01, slow_fraction=0.2)
        rng = np.random.default_rng(5)
        samples = service.sample(200_000, rng)
        assert samples.mean() == pytest.approx(service.mean, rel=0.01)
        measured_scv = samples.var() / samples.mean() ** 2
        assert measured_scv == pytest.approx(service.scv, rel=0.05)


class TestJBSQ:
    def test_registered_spec_with_d(self):
        p = make_partitioner("jbsq:d=4", 8)
        assert isinstance(p, JoinBoundedShortestQueue)
        assert p.num_choices == 4

    def test_key_agnostic_candidates_advance_with_counter(self):
        p = JoinBoundedShortestQueue(8, seed=0)
        first = p.candidates("anything")
        p.route("anything")
        second = p.candidates("anything")
        # same key, new message: candidate set is counter-driven.
        assert first != second or p.family.choices(0, 8) != p.family.choices(1, 8)

    def test_outstanding_tracks_feedback(self):
        p = JoinBoundedShortestQueue(4, seed=0)
        workers = [p.route(k) for k in range(10)]
        assert p.outstanding.sum() == 10
        for w in workers:
            p.on_complete(w)
        assert p.outstanding.sum() == 0
        with pytest.raises(ValueError):
            p.on_complete(workers[0])  # nothing outstanding anymore
        with pytest.raises(ValueError):
            p.on_complete(99)

    def test_feedback_steers_away_from_backlogged_worker(self):
        p = JoinBoundedShortestQueue(2, num_choices=2, seed=0)
        # pile outstanding work on worker 0 without completions.
        p.outstanding[0] = 100
        routed = [p.route(i) for i in range(50)]
        assert routed.count(1) > routed.count(0)

    def test_route_chunk_matches_route_replay(self):
        keys = np.arange(500, dtype=np.int64) % 13
        a = JoinBoundedShortestQueue(8, seed=2)
        b = JoinBoundedShortestQueue(8, seed=2)
        chunked = b.route_chunk(keys)
        singles = np.array([a.route(k) for k in keys])
        assert np.array_equal(chunked, singles)
        assert np.array_equal(a.outstanding, b.outstanding)

    def test_reset_clears_state(self):
        p = JoinBoundedShortestQueue(4, seed=0)
        for k in range(20):
            p.route(k)
        p.reset()
        assert p.outstanding.sum() == 0
        assert p.route_chunk(np.arange(5)).shape == (5,)

    def test_no_routing_table(self):
        p = JoinBoundedShortestQueue(4, seed=0)
        for k in range(100):
            p.route(k)
        assert p.memory_entries() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            JoinBoundedShortestQueue(4, num_choices=0)

    def test_improves_tail_over_shuffle_under_load(self):
        """The point of queue-depth feedback: lower p99 than blind sg."""
        sg = run(make_partitioner("sg", 8), n=30_000, rho=0.9)
        jbsq = run(make_partitioner("jbsq", 8), n=30_000, rho=0.9)
        assert jbsq.dropped == 0  # feedback credits released correctly
        assert jbsq.sojourn_quantile(0.99) < sg.sojourn_quantile(0.99)

    def test_drop_releases_outstanding_credit(self):
        p = make_partitioner("jbsq", 2)
        n = 3_000
        simulate_queueing(
            np.zeros(n, dtype=np.int64),
            p,
            DeterministicArrivals(5000.0),
            DeterministicService(1.0 / 1000.0),
            seed=3,
            queue_capacity=3,
        )
        # after the run drains, every arrival was either completed or
        # dropped, and both paths released their outstanding credit.
        assert p.outstanding.sum() == 0


class TestQueueingCLI:
    def test_main_prints_table(self, capsys):
        from repro.queueing.__main__ import main

        rc = main(
            ["--scale", "0.1", "--utilizations", "0.6", "--schemes", "sg",
             "--jobs", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Excess tail latency" in out
        assert "SG" in out

    def test_main_rejects_bad_utilization(self):
        from repro.queueing.__main__ import main

        with pytest.raises(SystemExit):
            main(["--utilizations", "1.5"])
