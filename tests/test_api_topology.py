"""Fluent Topology builder tests: validation, build, heterogeneity."""

import pytest

from repro.api import Topology, TopologyError, run
from repro.partitioning import PartialKeyGrouping
from repro.streams.distributions import ZipfKeyDistribution


def dist():
    return ZipfKeyDistribution(1.05, 10_000)


def tiny(scheme="pkg"):
    return (
        Topology()
        .source(dist())
        .partition_by(scheme)
        .workers(4, cpu_delay=0.2e-3)
        .timing(duration=2.0, warmup=0.5)
    )


class TestValidation:
    def test_spouts_must_be_positive(self):
        with pytest.raises(TopologyError):
            Topology().spouts(0)

    def test_workers_must_be_positive(self):
        with pytest.raises(TopologyError):
            Topology().workers(0)

    def test_workers_needs_an_argument(self):
        with pytest.raises(TopologyError):
            Topology().workers()

    def test_cpu_delay_positive(self):
        with pytest.raises(TopologyError):
            Topology().workers(4, cpu_delay=0.0)

    def test_delays_count_mismatch(self):
        with pytest.raises(TopologyError):
            Topology().workers(3, delays=[1e-3, 2e-3])

    def test_delays_must_be_positive(self):
        with pytest.raises(TopologyError):
            Topology().workers(delays=[1e-3, -1e-3])

    def test_unknown_scheme_fails_fast(self):
        with pytest.raises(ValueError, match="unknown partitioning scheme"):
            Topology().partition_by("magic")  # repro: noqa[REPRO005]

    def test_straggler_validation(self):
        with pytest.raises(TopologyError):
            Topology().straggler(-1, 2.0)
        with pytest.raises(TopologyError):
            Topology().straggler(0, 0.0)

    def test_straggler_out_of_range_at_build(self):
        topo = tiny().workers(4, cpu_delay=0.2e-3).straggler(7, 2.0)
        with pytest.raises(TopologyError, match="out of range"):
            topo.build()

    def test_duration_must_exceed_warmup(self):
        with pytest.raises(TopologyError):
            tiny().timing(duration=1.0, warmup=2.0).build()

    def test_negative_aggregation_period(self):
        with pytest.raises(TopologyError):
            Topology().aggregate(every=-1.0)

    def test_build_without_source(self):
        topo = Topology().partition_by("pkg").workers(2).timing(2.0, 0.5)
        with pytest.raises(TopologyError, match="no key source"):
            topo.build()

    def test_network_validation(self):
        with pytest.raises(TopologyError):
            Topology().network(max_pending=0)
        with pytest.raises(TopologyError):
            Topology().network(delay=-1.0)

    def test_pinned_instance_worker_mismatch(self):
        topo = tiny().partition_by(PartialKeyGrouping(5)).workers(9)
        with pytest.raises(ValueError, match="9"):
            topo.build()

    def test_pinned_instance_with_multiple_spouts(self):
        topo = (
            tiny()
            .partition_by(PartialKeyGrouping(4))
            .spouts(2)
        )
        with pytest.raises(TopologyError, match="one spout"):
            topo.build()


class TestBuild:
    def test_config_reflects_builder(self):
        cfg = (
            Topology()
            .spouts(2)
            .workers(6, cpu_delay=0.3e-3)
            .straggler(1, 2.0)
            .aggregate(every=5.0)
            .timing(duration=8.0, warmup=2.0)
            .seed(11)
            .to_config()
        )
        assert cfg.num_spouts == 2
        assert cfg.num_workers == 6
        assert cfg.cpu_delay == 0.3e-3
        assert cfg.straggler_worker == 1
        assert cfg.straggler_factor == 2.0
        assert cfg.aggregation_period == 5.0
        assert cfg.seed == 11

    def test_heterogeneous_delays_reach_workers(self):
        delays = [0.1e-3, 0.2e-3, 0.4e-3]
        cluster = tiny().workers(delays=delays).build()
        assert [w.cpu_delay for w in cluster.workers] == delays

    def test_spec_string_configures_partitioner(self):
        cluster = tiny("pkg:d=3").build()
        assert cluster.partitioner.num_choices == 3
        assert cluster.scheme == "pkg"

    def test_dataset_symbol_source(self):
        cluster = tiny().source("WP").build()
        assert cluster.distribution.p1 > 0

    def test_each_spout_gets_its_own_partitioner(self):
        cluster = tiny().spouts(3).build()
        partitioners = [s.partitioner for s in cluster.spouts]
        assert len({id(p) for p in partitioners}) == 3


class TestRun:
    def test_run_returns_unified_result(self):
        result = tiny().run()
        assert result.scheme == "PKG"
        assert result.throughput > 0
        assert result.latency_p99 >= result.latency_p50 >= 0
        assert result.num_workers == 4
        assert result.num_messages > 0

    def test_run_deterministic_for_fixed_seed(self):
        a = tiny().seed(5).run()
        b = tiny().seed(5).run()
        assert a.throughput == b.throughput
        assert a.num_messages == b.num_messages
        assert list(a.worker_loads) == list(b.worker_loads)

    def test_straggler_hurts_kg_throughput(self):
        fair = tiny("kg").run()
        slow = tiny("kg").straggler(0, factor=8.0).run()
        assert slow.throughput < fair.throughput

    def test_facade_accepts_topology(self):
        result = run(tiny())
        assert result.throughput > 0
