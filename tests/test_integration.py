"""Cross-module integration tests: datasets -> partitioning -> apps."""

import numpy as np
import pytest

from repro import (
    KeyGrouping,
    PartialKeyGrouping,
    ShuffleGrouping,
    WorkerLoadRegistry,
)
from repro.analysis import feasible_workers, imbalance_lower_bound_hot_key
from repro.applications import DistributedWordCount, exact_top_k
from repro.load import GlobalOracleEstimator, LocalLoadEstimator
from repro.simulation import (
    count_partial_states,
    jaccard_overlap,
    simulate_multisource_pkg,
    simulate_stream,
)
from repro.streams import get_dataset


class TestDatasetToPartitioner:
    """The full Q1/Q2 pipeline on the WP synthetic dataset."""

    @pytest.fixture(scope="class")
    def wp_keys(self):
        return get_dataset("WP").stream(120_000, seed=5)

    def test_pkg_beats_hashing_orders_of_magnitude(self, wp_keys):
        pkg = simulate_multisource_pkg(wp_keys, num_workers=5, num_sources=5)
        kg = simulate_stream(wp_keys, KeyGrouping(5))
        assert pkg.average_imbalance < kg.average_imbalance / 100

    def test_transition_at_feasibility_threshold(self, wp_keys):
        """The 'binary' behaviour of Table II: balanced below O(1/p1),
        imbalanced above."""
        spec = get_dataset("WP")
        p1 = spec.paper_p1_percent / 100.0
        threshold = feasible_workers(p1)  # ~21 for WP
        below = simulate_multisource_pkg(wp_keys, num_workers=5)
        above = simulate_multisource_pkg(wp_keys, num_workers=100)
        assert below.average_imbalance_fraction < 1e-3
        assert above.average_imbalance_fraction > 1e-3
        assert 5 < threshold < 100

    def test_infeasible_imbalance_respects_lower_bound(self, wp_keys):
        """No scheme can beat the hot-key lower bound of Section IV."""
        m = wp_keys.size
        w = 100
        p1 = get_dataset("WP").paper_p1_percent / 100.0
        bound = imbalance_lower_bound_hot_key(m, w, p1)
        result = simulate_multisource_pkg(wp_keys, num_workers=w)
        assert result.final_imbalance >= 0.5 * bound

    def test_local_vs_global_different_routes_same_balance(self, wp_keys):
        g = simulate_multisource_pkg(
            wp_keys, num_workers=10, num_sources=5, mode="global",
            keep_assignments=True,
        )
        l = simulate_multisource_pkg(
            wp_keys, num_workers=10, num_sources=5, mode="local",
            keep_assignments=True,
        )
        overlap = jaccard_overlap(g.assignments, l.assignments)
        assert overlap < 0.9  # genuinely different routings...
        ratio = (l.average_imbalance + 1) / (g.average_imbalance + 1)
        assert ratio < 20  # ...but comparable balance


class TestEstimatorWiring:
    def test_shared_registry_across_pkg_sources(self):
        """Multiple PKG sources with a global oracle share state."""
        registry = WorkerLoadRegistry(6)
        keys = get_dataset("LN2").stream(20_000, seed=2)
        sources = [
            PartialKeyGrouping(
                6, estimator=GlobalOracleEstimator(registry), seed=1
            )
            for _ in range(3)
        ]
        for i, k in enumerate(keys.tolist()):
            sources[i % 3].route(k)
        assert registry.total() == 20_000
        assert registry.imbalance() < 0.02 * 20_000

    def test_local_estimators_sum_to_truth(self):
        registry = WorkerLoadRegistry(4)
        estimators = [LocalLoadEstimator(4, registry) for _ in range(4)]
        sources = [
            PartialKeyGrouping(4, estimator=est, seed=1) for est in estimators
        ]
        keys = get_dataset("LN2").stream(8000, seed=3)
        for i, k in enumerate(keys.tolist()):
            sources[i % 4].route(k)
        total = sum(est.local for est in estimators)
        assert np.array_equal(total, registry.loads)


class TestEndToEndWordCount:
    def test_wordcount_on_wp_all_schemes_agree(self):
        words = get_dataset("WP").stream(30_000, seed=9).tolist()
        reference = exact_top_k(words, 20)
        memories = {}
        for name, partitioner in (
            ("KG", KeyGrouping(9)),
            ("SG", ShuffleGrouping(9)),
            ("PKG", PartialKeyGrouping(9)),
        ):
            wc = DistributedWordCount(partitioner, aggregation_period=4000)
            wc.process_stream(words)
            assert wc.top_k(20) == reference
            memories[name] = wc.stats.peak_worker_counters
        assert memories["KG"] <= memories["PKG"] <= memories["SG"]

    def test_replication_factor_matches_section3(self):
        """Memory: KG = K, PKG <= 2K, SG <= W*K partial states."""
        keys = get_dataset("LN1").stream(30_000, seed=4)
        distinct = np.unique(keys).size
        for partitioner, bound in (
            (KeyGrouping(8), distinct),
            (PartialKeyGrouping(8), 2 * distinct),
            (ShuffleGrouping(8), 8 * distinct),
        ):
            result = simulate_stream(keys, partitioner, keep_assignments=True)
            states = count_partial_states(keys, result.assignments)
            assert states <= bound


class TestDriftRobustness:
    def test_pkg_absorbs_ct_drift(self):
        """Q3: PKG stays balanced under popularity drift."""
        keys = get_dataset("CT").stream(100_000, seed=6)
        result = simulate_multisource_pkg(keys, num_workers=10, num_sources=5)
        kg = simulate_stream(keys, KeyGrouping(10))
        assert result.average_imbalance < kg.average_imbalance / 3
        assert result.average_imbalance_fraction < 0.01
