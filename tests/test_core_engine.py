"""repro.core.engine: the unified chunked replay engine."""

import numpy as np
import pytest

from repro.api import make_partitioner
from repro.core.engine import (
    EventLoop,
    InterleavedRouter,
    replay_interleaved,
    replay_per_source,
    replay_stream,
    route_chunked,
)
from repro.hashing import HashFamily
from repro.simulation.metrics import load_series
from repro.streams.distributions import ZipfKeyDistribution


def zipf_keys(n=15_000, seed=2):
    return ZipfKeyDistribution(1.5, 2_000).sample(n, np.random.default_rng(seed))


class TestReplayStream:
    def test_chunk_size_invariance(self):
        keys = zipf_keys()
        results = [
            replay_stream(
                keys,
                make_partitioner("pkg", 8, seed=1),
                chunk_size=size,
                keep_assignments=True,
            )
            for size in (64, 4_096, 1_000_000)
        ]
        for other in results[1:]:
            assert np.array_equal(results[0].assignments, other.assignments)
            assert np.array_equal(results[0].final_loads, other.final_loads)
            assert np.array_equal(
                results[0].imbalance_series, other.imbalance_series
            )

    def test_metrics_match_batch_definition(self):
        keys = zipf_keys(5_000)
        result = replay_stream(
            keys, make_partitioner("kg", 5, seed=3), keep_assignments=True
        )
        positions, series = load_series(result.assignments, 5)
        assert np.array_equal(result.checkpoint_positions, positions)
        assert np.array_equal(result.imbalance_series, series)
        assert np.array_equal(
            result.final_loads, np.bincount(result.assignments, minlength=5)
        )

    def test_assignments_dropped_by_default(self):
        result = replay_stream(zipf_keys(1_000), make_partitioner("sg", 4))
        assert result.assignments is None
        assert result.final_loads.sum() == 1_000

    def test_timestamp_length_validated(self):
        with pytest.raises(ValueError):
            replay_stream(
                zipf_keys(10),
                make_partitioner("kg", 3),
                timestamps=np.zeros(5),
            )


class TestReplayPerSource:
    def test_merges_in_arrival_order(self):
        keys = zipf_keys(4_000)
        built = []

        def factory(s):
            p = make_partitioner("sg", 4)
            built.append(p)
            return p

        result, partitioners = replay_per_source(
            keys, factory, 4, num_sources=3, keep_assignments=True
        )
        assert partitioners == built
        assert len(partitioners) == 3
        assert result.final_loads.sum() == keys.size
        # Round-robin split: source s handles messages s, s+3, s+6, ...
        source_ids = np.arange(keys.size) % 3
        for s in range(3):
            sub = result.assignments[source_ids == s]
            # each SG source cycles independently from worker 0
            assert np.array_equal(sub[:8] % 4, np.arange(8) % 4)

    def test_source_ids_validated(self):
        with pytest.raises(ValueError):
            replay_per_source(
                zipf_keys(10),
                lambda s: make_partitioner("kg", 3),
                3,
                num_sources=2,
                source_ids=np.zeros(4, dtype=np.int64),
            )


class TestInterleavedRouter:
    @pytest.mark.parametrize("mode", ["local", "global", "probing"])
    @pytest.mark.parametrize("d", [2, 3])
    def test_matches_per_message_reference(self, mode, d):
        keys = zipf_keys(6_000)
        family = HashFamily(size=d, seed=8)
        choices = family.choice_matrix(keys, 5)
        num_sources = 4
        sources = np.arange(keys.size, dtype=np.int64) % num_sources
        times = np.arange(keys.size, dtype=np.float64)
        probe_period = 750.0 if mode == "probing" else 0.0

        # Straight-line reference: per-message dict-of-lists replay.
        true_loads = [0] * 5
        views = (
            [true_loads] * num_sources
            if mode == "global"
            else [[0] * 5 for _ in range(num_sources)]
        )
        next_probe = [probe_period] * num_sources
        expected = np.empty(keys.size, dtype=np.int64)
        for i in range(keys.size):
            s = int(sources[i])
            view = views[s]
            if mode == "probing" and times[i] >= next_probe[s]:
                view = views[s] = true_loads.copy()
                while next_probe[s] <= times[i]:
                    next_probe[s] += probe_period
            cands = choices[i]
            best = int(cands[0])
            for c in cands[1:]:
                if view[c] < view[best]:
                    best = int(c)
            view[best] += 1
            if view is not true_loads:
                true_loads[best] += 1
            expected[i] = best

        result = replay_interleaved(
            choices,
            sources,
            num_sources,
            5,
            mode=mode,
            probe_period=probe_period,
            timestamps=times if mode == "probing" else None,
            chunk_size=1_111,
            keep_assignments=True,
        )
        assert np.array_equal(result.assignments, expected)
        assert np.array_equal(
            result.final_loads, np.bincount(expected, minlength=5)
        )

    def test_probing_requires_period(self):
        with pytest.raises(ValueError):
            InterleavedRouter(2, 4, mode="probing", probe_period=0.0)

    @pytest.mark.parametrize("bad_source", [-1, 2])
    def test_out_of_range_source_ids_rejected(self, bad_source):
        # Out-of-range ids would be out-of-bounds writes in the C
        # kernel's views matrix; they must be rejected before dispatch.
        router = InterleavedRouter(2, 4)
        choices = np.zeros((3, 2), dtype=np.int64)
        sources = np.array([0, bad_source, 1], dtype=np.int64)
        with pytest.raises(ValueError, match="source ids"):
            router.route(choices, sources)

    def test_out_of_range_choices_rejected(self):
        keys = np.zeros((5, 2), dtype=np.int64)
        bad = keys.copy()
        bad[3, 1] = 7
        with pytest.raises(ValueError, match="choice_matrix"):
            replay_interleaved(bad, np.zeros(5, dtype=np.int64), 1, 4)

    def test_negative_source_ids_rejected_by_adapter(self):
        from repro.simulation.multisource import simulate_multisource_pkg

        with pytest.raises(ValueError, match="source"):
            simulate_multisource_pkg(
                np.arange(6, dtype=np.int64),
                num_workers=3,
                num_sources=2,
                source_ids=np.array([0, -1, 0, 1, 0, 1], dtype=np.int64),
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            InterleavedRouter(2, 4, mode="telepathy")


class TestEventLoop:
    def test_deterministic_tie_break_by_schedule_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda: order.append("a"))
        loop.schedule(1.0, lambda: order.append("b"))
        loop.schedule(0.5, lambda: order.append("c"))
        loop.run_until(2.0)
        assert order == ["c", "a", "b"]
        assert loop.now == 2.0
        assert loop.total_events_processed == 3

    def test_rejects_past_scheduling(self):
        loop = EventLoop()
        loop.run_until(5.0)
        with pytest.raises(ValueError):
            loop.schedule_at(1.0, lambda: None)

    def test_dspe_simulator_is_event_loop_adapter(self):
        from repro.dspe.engine import Simulator

        assert issubclass(Simulator, EventLoop)

    def test_max_events_zero_processes_nothing(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        assert loop.run_until(5.0, max_events=0) == 0
        assert fired == []
        assert loop.total_events_processed == 0
        # the skipped event must still be pending, not silently lost.
        assert loop.run_until(5.0) == 1
        assert fired == [1]

    def test_max_events_early_stop_keeps_clock_and_pending_events(self):
        loop = EventLoop()
        order = []
        for label, delay in (("a", 1.0), ("b", 2.0), ("c", 3.0)):
            loop.schedule(delay, lambda label=label: order.append(label))
        assert loop.run_until(10.0, max_events=2) == 2
        assert order == ["a", "b"]
        # stopping on the budget must NOT fast-forward the clock past
        # the still-pending event at t=3.0.
        assert loop.now == 2.0
        assert loop.run_until(10.0) == 1
        assert order == ["a", "b", "c"]
        assert loop.now == 10.0
        assert loop.total_events_processed == 3

    def test_max_events_exact_budget_still_advances_clock(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        # budget not exhausted by the heap: clock reaches end_time.
        assert loop.run_until(5.0, max_events=3) == 1
        assert loop.now == 5.0

    def test_negative_max_events_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.run_until(1.0, max_events=-1)
        with pytest.raises(ValueError):
            loop.run(max_events=-1)

    def test_run_drains_heap_including_chained_events(self):
        loop = EventLoop()
        order = []

        def first():
            order.append("first")
            loop.schedule(1.0, lambda: order.append("chained"))

        loop.schedule(1.0, first)
        assert loop.run() == 2
        assert order == ["first", "chained"]
        assert loop.now == 2.0

    def test_run_with_max_events_leaves_remainder(self):
        loop = EventLoop()
        order = []
        for label, delay in (("a", 1.0), ("b", 2.0), ("c", 3.0)):
            loop.schedule(delay, lambda label=label: order.append(label))
        assert loop.run(max_events=1) == 1
        assert order == ["a"]
        assert loop.now == 1.0
        assert loop.run() == 2
        assert order == ["a", "b", "c"]
        assert loop.total_events_processed == 3


class TestRouteChunked:
    def test_equals_single_chunk_route(self):
        keys = zipf_keys(3_000)
        a = route_chunked(keys, make_partitioner("pkg", 6, seed=5), chunk_size=250)
        b = make_partitioner("pkg", 6, seed=5).route_chunk(keys)
        assert np.array_equal(a, b)
