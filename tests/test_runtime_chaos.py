"""Chaos matrix: seeded fault schedules x recovery policies x backends.

Two invariants carry the whole fault-tolerance contract and every run
here asserts at least one of them:

* **Conservation** -- ``sent == processed + dropped + lost`` holds
  exactly for every schedule, every policy, every backend.  Nothing is
  silently lost and nothing is double-counted, even mid-crash.
* **Restart determinism** -- after ``recovery="restart"`` fully
  recovers a killed worker, the per-worker counts are byte-identical
  to the fault-free single-process replay: the respawned worker
  re-processed exactly the span the dead one lost.

The hypothesis matrix drives randomly drawn (but seeded) fault plans
through the simulated backend; the fixed schedules then pin the
acceptance scenarios on real worker processes.  Deadlines are
tightened throughout so a recovery path that *would* hang fails fast
instead.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import available_schemes, make_partitioner
from repro.core.engine import replay_stream
from repro.runtime import (
    FaultPlan,
    RuntimeConfig,
    run_runtime,
    runtime_available,
)
from repro.streams.datasets import get_dataset

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

STREAM = get_dataset("WP").stream(12_000, seed=42)
SMALL = STREAM[:6_000]

needs_processes = pytest.mark.skipif(
    not runtime_available(), reason="process spawning or /dev/shm unavailable"
)

#: the paper's headline schemes, exercised on real processes.
PROCESS_SCHEMES = ("pkg", "kg", "sg", "jbsq")


def simulated_config(recovery, faults, **overrides):
    """Small rings + tight deadlines: force mid-stream interaction."""
    kwargs = dict(
        mode="simulated",
        capacity=128,
        flush_size=128,
        recovery=recovery,
        faults=faults,
        push_deadline=0.5,
        liveness_deadline=1.0,
        drain_deadline=30.0,
    )
    kwargs.update(overrides)
    return RuntimeConfig(**kwargs)


def process_config(recovery, faults, **overrides):
    kwargs = dict(
        mode="process",
        capacity=512,
        flush_size=512,
        recovery=recovery,
        faults=faults,
        push_deadline=0.5,
        liveness_deadline=2.0,
        drain_deadline=60.0,
    )
    kwargs.update(overrides)
    return RuntimeConfig(**kwargs)


class TestChaosMatrixSimulated:
    """Randomly drawn fault plans must never break conservation."""

    @settings(max_examples=25, deadline=None)
    @given(
        chaos_seed=st.integers(min_value=0, max_value=10_000),
        recovery=st.sampled_from(["reroute", "restart"]),
        scheme=st.sampled_from(["pkg", "kg"]),
    )
    def test_conservation_always_holds(self, chaos_seed, recovery, scheme):
        plan = FaultPlan.random(
            seed=chaos_seed, num_workers=3, num_messages=SMALL.size
        )
        result = run_runtime(
            SMALL,
            make_partitioner(scheme, 3, seed=42),
            simulated_config(recovery, plan),
        )
        assert result.status in ("ok", "degraded", "failed")
        assert result.sent == SMALL.size
        assert result.conservation_ok, (
            f"seed={chaos_seed} recovery={recovery} scheme={scheme}: "
            f"sent={result.sent} processed={result.processed} "
            f"dropped={result.dropped} lost={result.lost}"
        )
        assert result.worker_loads.sum() == result.processed
        kinds = {s.kind for s in plan.specs}
        if (
            recovery == "restart"
            and result.status == "ok"
            and "drop" not in kinds
        ):
            # Fully recovered without loss-by-design faults: counts are
            # byte-identical to the fault-free replay.
            replay = replay_stream(
                SMALL, make_partitioner(scheme, 3, seed=42)
            )
            np.testing.assert_array_equal(
                result.worker_loads, replay.final_loads
            )

    @settings(max_examples=10, deadline=None)
    @given(chaos_seed=st.integers(min_value=0, max_value=10_000))
    def test_fail_policy_aborts_cleanly_or_completes(self, chaos_seed):
        # Under `fail`, a lethal fault yields a labeled partial result;
        # a non-lethal plan completes ok.  Either way: conservation.
        plan = FaultPlan.random(
            seed=chaos_seed, num_workers=3, num_messages=SMALL.size
        )
        result = run_runtime(
            SMALL,
            make_partitioner("pkg", 3, seed=42),
            simulated_config("fail", plan),
        )
        lethal = any(s.lethal for s in plan.specs)
        if result.status == "failed":
            assert lethal
            assert result.failures
        assert result.conservation_ok


class TestRestartIdentitySimulated:
    """Every registered scheme survives kill+restart byte-identically."""

    @pytest.mark.parametrize("scheme", sorted(available_schemes()))
    def test_kill_restart_matches_replay(self, scheme):
        plan = FaultPlan.parse(["kill:w=1@n=200"], seed=42)
        result = run_runtime(
            STREAM,
            make_partitioner(scheme, 4, seed=42),
            simulated_config("restart", plan),
        )
        replay = replay_stream(STREAM, make_partitioner(scheme, 4, seed=42))
        assert result.status == "ok", result.failures
        assert result.conservation_ok
        np.testing.assert_array_equal(result.worker_loads, replay.final_loads)
        if replay.final_loads[1] >= 200:  # the trigger actually fired
            assert result.restarts >= 1
            assert result.failures[0]["worker"] == 1

    def test_double_kill_restarts_twice(self):
        # The re-armed schedule: the respawned worker dies again during
        # or after the replay; recovery handles it recursively.
        plan = FaultPlan.parse(
            ["kill:w=1@n=500", "kill:w=1@n=1500"], seed=42
        )
        result = run_runtime(
            STREAM,
            make_partitioner("pkg", 4, seed=42),
            simulated_config("restart", plan),
        )
        replay = replay_stream(STREAM, make_partitioner("pkg", 4, seed=42))
        assert result.status == "ok"
        assert result.restarts == 2
        np.testing.assert_array_equal(result.worker_loads, replay.final_loads)

    def test_restart_limit_aborts_cleanly(self):
        # More kills than the limit allows: a clean, conserved abort --
        # never a hang.
        plan = FaultPlan.parse(
            ["kill:w=1@n=100", "kill:w=1@n=200", "kill:w=1@n=300"],
            seed=42,
        )
        result = run_runtime(
            STREAM,
            make_partitioner("pkg", 4, seed=42),
            simulated_config("restart", plan, restart_limit=2),
        )
        assert result.status == "failed"
        assert result.restarts == 2
        assert result.conservation_ok


class TestRerouteSimulated:
    def test_degraded_run_conserves_and_masks(self):
        plan = FaultPlan.parse(["kill:w=1@n=1000"], seed=42)
        result = run_runtime(
            STREAM,
            make_partitioner("pkg", 4, seed=42),
            simulated_config("reroute", plan),
        )
        assert result.status == "degraded"
        assert result.masked_workers == (1,)
        assert result.conservation_ok
        assert result.lost > 0  # the dead worker's unprocessed span
        # Survivors absorbed the rerouted traffic: everything the dead
        # worker didn't lose was processed by the remaining three.
        assert result.processed == STREAM.size - result.lost

    def test_stall_forever_is_condemned_and_rerouted(self):
        plan = FaultPlan.parse(["stall:w=2@n=1000"], seed=42)
        result = run_runtime(
            STREAM,
            make_partitioner("kg", 4, seed=42),
            simulated_config("reroute", plan),
        )
        assert result.status == "degraded"
        assert result.masked_workers == (2,)
        assert result.failures[0]["reason"] == "wedged"
        assert result.conservation_ok


@needs_processes
class TestProcessChaosMatrix:
    """The acceptance schedules on real worker processes."""

    @pytest.mark.parametrize("scheme", PROCESS_SCHEMES)
    def test_kill_restart_is_byte_identical(self, scheme):
        plan = FaultPlan.parse(["kill:w=1@n=500"], seed=42)
        result = run_runtime(
            STREAM,
            make_partitioner(scheme, 4, seed=42),
            process_config("restart", plan),
        )
        replay = replay_stream(STREAM, make_partitioner(scheme, 4, seed=42))
        assert result.mode == "process"
        assert result.status == "ok", result.failures
        assert result.conservation_ok
        np.testing.assert_array_equal(result.worker_loads, replay.final_loads)
        if replay.final_loads[1] >= 500:
            assert result.restarts >= 1

    @pytest.mark.parametrize("scheme", PROCESS_SCHEMES)
    def test_kill_reroute_conserves_degraded(self, scheme):
        plan = FaultPlan.parse(["kill:w=1@n=500"], seed=42)
        result = run_runtime(
            STREAM,
            make_partitioner(scheme, 4, seed=42),
            process_config("reroute", plan),
        )
        assert result.mode == "process"
        assert result.conservation_ok
        if result.restarts == 0 and result.failures:
            assert result.status == "degraded"
            assert result.masked_workers == (1,)
            assert result.worker_loads.sum() == result.processed

    def test_chaos_plan_on_processes(self):
        # One randomly drawn (seeded) schedule end-to-end on real
        # processes: whatever it drew, nothing leaks and the
        # conservation law holds.
        plan = FaultPlan.random(
            seed=7, num_workers=4, num_messages=STREAM.size
        )
        result = run_runtime(
            STREAM,
            make_partitioner("pkg", 4, seed=42),
            process_config("reroute", plan),
        )
        assert result.injected_faults == tuple(
            s.describe() for s in plan.specs
        )
        assert result.conservation_ok
