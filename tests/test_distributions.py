"""Tests for repro.streams.distributions."""

import numpy as np
import pytest

from repro.streams.distributions import (
    EmpiricalKeyDistribution,
    LogNormalKeyDistribution,
    UniformKeyDistribution,
    ZipfKeyDistribution,
    calibrate_zipf_exponent,
    zipf_p1,
)


class TestZipf:
    def test_probabilities_sum_to_one(self):
        d = ZipfKeyDistribution(1.2, 1000)
        assert d.probabilities.sum() == pytest.approx(1.0)

    def test_sorted_descending(self):
        p = ZipfKeyDistribution(0.8, 500).probabilities
        assert np.all(np.diff(p) <= 0)

    def test_p1_matches_formula(self):
        d = ZipfKeyDistribution(1.5, 100)
        assert d.p1 == pytest.approx(zipf_p1(1.5, 100))

    def test_zero_exponent_is_uniform(self):
        d = ZipfKeyDistribution(0.0, 10)
        assert np.allclose(d.probabilities, 0.1)

    def test_higher_exponent_more_skew(self):
        assert ZipfKeyDistribution(2.0, 100).p1 > ZipfKeyDistribution(1.0, 100).p1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ZipfKeyDistribution(1.0, 0)
        with pytest.raises(ValueError):
            ZipfKeyDistribution(-1.0, 10)

    def test_sampling_respects_head(self):
        d = ZipfKeyDistribution(1.5, 1000)
        keys = d.sample(50_000, np.random.default_rng(0))
        counts = np.bincount(keys, minlength=1000)
        measured_p1 = counts.max() / keys.size
        assert measured_p1 == pytest.approx(d.p1, rel=0.05)

    def test_sampling_deterministic_with_seed(self):
        d = ZipfKeyDistribution(1.1, 100)
        a = d.sample(1000, np.random.default_rng(3))
        b = d.sample(1000, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_sample_size_zero(self):
        d = ZipfKeyDistribution(1.1, 100)
        assert d.sample(0, np.random.default_rng(0)).size == 0

    def test_sample_negative_rejected(self):
        with pytest.raises(ValueError):
            ZipfKeyDistribution(1.1, 100).sample(-1)

    def test_keys_in_range(self):
        d = ZipfKeyDistribution(1.3, 50)
        keys = d.sample(10_000, np.random.default_rng(1))
        assert keys.min() >= 0 and keys.max() < 50


class TestCalibration:
    @pytest.mark.parametrize("target", [0.02, 0.0932, 0.1471, 0.3])
    def test_hits_target(self, target):
        exponent = calibrate_zipf_exponent(10_000, target)
        assert zipf_p1(exponent, 10_000) == pytest.approx(target, rel=1e-4)

    def test_below_uniform_floor_rejected(self):
        with pytest.raises(ValueError):
            calibrate_zipf_exponent(10, 0.05)  # floor is 0.1

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            calibrate_zipf_exponent(100, 0.0)
        with pytest.raises(ValueError):
            calibrate_zipf_exponent(100, 1.0)

    def test_monotone_in_target(self):
        lo = calibrate_zipf_exponent(1000, 0.05)
        hi = calibrate_zipf_exponent(1000, 0.2)
        assert hi > lo


class TestUniform:
    def test_flat(self):
        d = UniformKeyDistribution(8)
        assert np.allclose(d.probabilities, 1 / 8)

    def test_p1(self):
        assert UniformKeyDistribution(20).p1 == pytest.approx(0.05)

    def test_entropy_is_log_k(self):
        d = UniformKeyDistribution(64)
        assert d.entropy() == pytest.approx(np.log(64))


class TestLogNormal:
    def test_paper_ln1_p1(self):
        d = LogNormalKeyDistribution(1.789, 2.366, 16_000)
        assert d.p1 * 100 == pytest.approx(14.71, abs=0.05)

    def test_paper_ln2_p1(self):
        d = LogNormalKeyDistribution(2.245, 1.133, 1_100)
        assert d.p1 * 100 == pytest.approx(7.01, abs=0.05)

    def test_probabilities_normalised(self):
        d = LogNormalKeyDistribution(1.0, 1.0, 500)
        assert d.probabilities.sum() == pytest.approx(1.0)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            LogNormalKeyDistribution(1.0, 0.0, 10)

    def test_sampled_head_matches(self):
        d = LogNormalKeyDistribution(2.245, 1.133, 1_100)
        keys = d.sample(100_000, np.random.default_rng(2))
        counts = np.bincount(keys)
        assert counts.max() / keys.size == pytest.approx(d.p1, rel=0.05)


class TestEmpirical:
    def test_from_weights(self):
        d = EmpiricalKeyDistribution([3, 1, 6])
        assert d.probabilities[0] == pytest.approx(0.6)
        assert d.num_keys == 3

    def test_from_stream(self):
        keys = np.array([0, 0, 0, 1, 2, 2])
        d = EmpiricalKeyDistribution.from_stream(keys)
        assert d.p1 == pytest.approx(0.5)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            EmpiricalKeyDistribution([1, -2]).probabilities

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            EmpiricalKeyDistribution([0.0, 0.0]).probabilities


class TestCommonProperties:
    def test_head_mass(self):
        d = ZipfKeyDistribution(1.0, 100)
        assert d.head_mass(100) == pytest.approx(1.0)
        assert 0 < d.head_mass(1) == d.p1

    def test_feasible_workers(self):
        d = UniformKeyDistribution(10)  # p1 = 0.1
        assert d.feasible_workers() == 20

    def test_expected_counts(self):
        d = UniformKeyDistribution(4)
        assert np.allclose(d.expected_counts(100), 25.0)
