"""Integration tests for the simulated word-count cluster (Q4)."""

import pytest

from repro.dspe import ClusterConfig, WordCountCluster, run_wordcount
from repro.partitioning import PartialKeyGrouping
from repro.streams.distributions import ZipfKeyDistribution


def dist():
    return ZipfKeyDistribution(1.05, 10_000)  # WP-like skew (p1 ~ 9%)


def short_config(**kw):
    defaults = dict(duration=4.0, warmup=1.0, seed=1)
    defaults.update(kw)
    return ClusterConfig(**defaults)


class TestClusterBasics:
    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            run_wordcount("magic", dist(), short_config())

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ClusterConfig(duration=1.0, warmup=2.0)
        with pytest.raises(ValueError):
            ClusterConfig(num_workers=0)

    def test_metrics_fields(self):
        m = run_wordcount("pkg", dist(), short_config())
        assert m.scheme == "PKG"
        assert m.throughput > 0
        assert m.completed > 0
        assert m.emitted >= m.completed
        assert len(m.worker_loads) == 9
        assert m.latency.count == m.completed

    def test_conservation(self):
        m = run_wordcount("sg", dist(), short_config())
        assert sum(m.worker_loads) <= m.emitted

    def test_deterministic_given_seed(self):
        a = run_wordcount("pkg", dist(), short_config())
        b = run_wordcount("pkg", dist(), short_config())
        assert a.throughput == b.throughput
        assert a.completed == b.completed

    def test_custom_partitioner_injection(self):
        cfg = short_config()
        m = run_wordcount(
            "pkg", dist(), cfg, partitioner=PartialKeyGrouping(cfg.num_workers)
        )
        assert m.throughput > 0

    def test_summary_string(self):
        m = run_wordcount("kg", dist(), short_config())
        assert "KG" in m.summary()


class TestFig5aShape:
    def test_low_delay_spout_bound_all_equal(self):
        cfg = lambda: short_config(cpu_delay=0.1e-3)
        results = {s: run_wordcount(s, dist(), cfg()) for s in ("kg", "sg", "pkg")}
        values = [r.throughput for r in results.values()]
        assert max(values) - min(values) < 0.05 * max(values)

    def test_high_delay_kg_loses_throughput(self):
        cfg = lambda: short_config(cpu_delay=1.0e-3, duration=6.0, warmup=2.0)
        kg = run_wordcount("kg", dist(), cfg())
        pkg = run_wordcount("pkg", dist(), cfg())
        sg = run_wordcount("sg", dist(), cfg())
        assert kg.throughput < 0.8 * pkg.throughput
        assert abs(pkg.throughput - sg.throughput) < 0.1 * sg.throughput

    def test_high_delay_kg_latency_higher(self):
        cfg = lambda: short_config(cpu_delay=1.0e-3, duration=6.0, warmup=2.0)
        kg = run_wordcount("kg", dist(), cfg())
        pkg = run_wordcount("pkg", dist(), cfg())
        assert kg.latency.mean > pkg.latency.mean

    def test_kg_load_imbalance_highest(self):
        cfg = lambda: short_config(cpu_delay=0.2e-3)
        kg = run_wordcount("kg", dist(), cfg())
        sg = run_wordcount("sg", dist(), cfg())
        assert kg.load_imbalance > sg.load_imbalance


class TestFig5bShape:
    def test_aggregation_produces_messages_and_memory(self):
        cfg = short_config(
            duration=8.0, warmup=2.0, aggregation_period=1.0, cpu_delay=0.4e-3
        )
        m = run_wordcount("pkg", dist(), cfg)
        assert m.aggregation_messages > 0
        assert m.average_memory_counters > 0

    def test_pkg_less_memory_than_sg(self):
        def cfg():
            return short_config(
                duration=8.0, warmup=2.0, aggregation_period=2.0, cpu_delay=0.4e-3
            )

        pkg = run_wordcount("pkg", dist(), cfg())
        sg = run_wordcount("sg", dist(), cfg())
        assert pkg.average_memory_counters < sg.average_memory_counters
        assert pkg.throughput >= 0.95 * sg.throughput

    def test_longer_period_more_memory(self):
        def cfg(period):
            return short_config(
                duration=10.0, warmup=2.0, aggregation_period=period,
                cpu_delay=0.4e-3,
            )

        short_t = run_wordcount("pkg", dist(), cfg(0.5))
        long_t = run_wordcount("pkg", dist(), cfg(4.0))
        assert short_t.average_memory_counters < long_t.average_memory_counters

    def test_aggregator_receives_all_flushed_words(self):
        cfg = short_config(
            duration=6.0, warmup=1.0, aggregation_period=1.0, cpu_delay=0.2e-3
        )
        cluster = WordCountCluster("pkg", dist(), cfg)
        cluster.run()
        aggregated = sum(cluster.aggregator.totals.values())
        processed = sum(w.processed for w in cluster.workers)
        live_counts = sum(sum(w.counts.values()) for w in cluster.workers)
        # Counts are conserved up to flush batches still in flight when
        # the simulation horizon cuts off.
        assert aggregated + live_counts <= processed
        assert aggregated + live_counts >= 0.9 * processed
