"""Tests for the SPACESAVING sketch."""

import numpy as np
import pytest

from repro.sketches import SpaceSaving
from repro.streams.distributions import ZipfKeyDistribution


def exact_counts(items):
    out = {}
    for x in items:
        out[x] = out.get(x, 0) + 1
    return out


class TestBasics:
    def test_under_capacity_exact(self):
        ss = SpaceSaving(10)
        ss.extend(["a", "b", "a", "c", "a"])
        assert ss.estimate("a") == 3
        assert ss.error("a") == 0
        assert ss.guaranteed_count("a") == 3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)

    def test_eviction_inherits_min(self):
        ss = SpaceSaving(2)
        ss.offer("a")
        ss.offer("b")
        ss.offer("c")  # evicts the min (count 1): c gets count 2, err 1
        assert ss.estimate("c") == 2
        assert ss.error("c") == 1
        assert len(ss) == 2

    def test_total_tracks_stream(self):
        ss = SpaceSaving(4)
        ss.extend(range(100))
        assert ss.total == 100

    def test_count_argument(self):
        ss = SpaceSaving(4)
        ss.offer("x", count=7)
        assert ss.estimate("x") == 7

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            SpaceSaving(4).offer("x", count=0)

    def test_contains(self):
        ss = SpaceSaving(4)
        ss.offer("q")
        assert "q" in ss and "z" not in ss

    def test_min_count_under_capacity_zero(self):
        ss = SpaceSaving(5)
        ss.offer("a")
        assert ss.min_count() == 0


class TestGuarantees:
    def make_stream(self, m=20_000, seed=0):
        return ZipfKeyDistribution(1.2, 1000).sample(
            m, np.random.default_rng(seed)
        ).tolist()

    def test_overestimate_bounded_by_total_over_capacity(self):
        items = self.make_stream()
        capacity = 100
        ss = SpaceSaving(capacity)
        ss.extend(items)
        truth = exact_counts(items)
        for item in list(ss._counts)[:50]:
            est = ss.estimate(item)
            true = truth.get(item, 0)
            assert true <= est <= true + len(items) / capacity + 1

    def test_error_field_upper_bounds_overestimate(self):
        items = self.make_stream()
        ss = SpaceSaving(64)
        ss.extend(items)
        truth = exact_counts(items)
        for item in list(ss._counts):
            assert ss.estimate(item) - truth.get(item, 0) <= ss.error(item)

    def test_heavy_items_always_tracked(self):
        items = self.make_stream()
        capacity = 100
        ss = SpaceSaving(capacity)
        ss.extend(items)
        threshold = len(items) / capacity
        truth = exact_counts(items)
        for item, count in truth.items():
            if count > threshold:
                assert item in ss

    def test_top_k_matches_exact_on_skew(self):
        items = self.make_stream()
        ss = SpaceSaving(200)
        ss.extend(items)
        truth = sorted(exact_counts(items).items(), key=lambda kv: -kv[1])
        found = [k for k, _ in ss.top_k(5)]
        assert found == [k for k, _ in truth[:5]]

    def test_heavy_hitters_guaranteed(self):
        items = self.make_stream()
        ss = SpaceSaving(200)
        ss.extend(items)
        truth = exact_counts(items)
        for item, est in ss.heavy_hitters(0.02):
            assert truth[item] > 0.02 * len(items) * 0.5  # no wild false positives

    def test_top_k_validation(self):
        with pytest.raises(ValueError):
            SpaceSaving(4).top_k(-1)

    def test_heavy_hitters_phi_validation(self):
        with pytest.raises(ValueError):
            SpaceSaving(4).heavy_hitters(0.0)


class TestMerge:
    def test_merge_totals_add(self):
        a, b = SpaceSaving(8), SpaceSaving(8)
        a.extend("aab")
        b.extend("abb")
        merged = a.merge(b)
        assert merged.total == 6

    def test_merge_estimates_add(self):
        a, b = SpaceSaving(8), SpaceSaving(8)
        a.extend("aab")
        b.extend("abb")
        merged = a.merge(b)
        assert merged.estimate("a") == 3
        assert merged.estimate("b") == 3

    def test_merge_error_bound_holds(self):
        rng = np.random.default_rng(1)
        stream = ZipfKeyDistribution(1.3, 300).sample(10_000, rng).tolist()
        half = len(stream) // 2
        a, b = SpaceSaving(64), SpaceSaving(64)
        a.extend(stream[:half])
        b.extend(stream[half:])
        merged = a.merge(b)
        truth = exact_counts(stream)
        for item in list(merged._counts)[:50]:
            true = truth.get(item, 0)
            assert merged.estimate(item) >= true  # never underestimates tracked
            assert merged.estimate(item) - true <= merged.error(item)

    def test_merge_respects_capacity(self):
        a, b = SpaceSaving(4), SpaceSaving(4)
        a.extend(range(10))
        b.extend(range(10, 20))
        assert len(a.merge(b)) <= 4

    def test_merge_preserves_heavy_item(self):
        a, b = SpaceSaving(16), SpaceSaving(16)
        a.extend(["hot"] * 100 + list(range(20)))
        b.extend(["hot"] * 50 + list(range(20, 40)))
        merged = a.merge(b)
        assert merged.top_k(1)[0][0] == "hot"
        assert merged.estimate("hot") >= 150
