"""Registry tests: round-trips, spec parsing, aliases, kwarg overrides."""

import numpy as np
import pytest

from repro.api import (
    available_schemes,
    make_partitioner,
    parse_spec,
    resolve_scheme_name,
    scheme_info,
)
from repro.partitioning import (
    ConsistentPartialKeyGrouping,
    KeyGrouping,
    PartialKeyGrouping,
    Partitioner,
    RebalancingKeyGrouping,
)

KEYS = np.arange(2_000, dtype=np.int64) % 97


class TestRoundTrip:
    def test_every_registered_scheme_builds_and_routes(self):
        for name in available_schemes():
            p = make_partitioner(name, 8, seed=3)
            assert isinstance(p, Partitioner), name
            assert p.num_workers == 8, name
            routed = p.route_chunk(KEYS)
            assert routed.shape == KEYS.shape, name
            assert routed.min() >= 0 and routed.max() < 8, name

    def test_expected_builtins_present(self):
        expected = {
            "kg", "sg", "pkg", "potc", "on-greedy", "off-greedy",
            "least-loaded", "kg-rebalance", "ch", "ch-pkg",
        }
        assert expected <= set(available_schemes())

    def test_scheme_info_exposes_description(self):
        info = scheme_info("pkg")
        assert info.name == "pkg"
        assert info.factory is PartialKeyGrouping
        assert info.description

    def test_seed_forwarded_when_accepted(self):
        a = make_partitioner("kg", 10, seed=1)
        b = make_partitioner("kg", 10, seed=1)
        c = make_partitioner("kg", 10, seed=2)
        routed_a, routed_b, routed_c = (
            x.route_chunk(KEYS) for x in (a, b, c)
        )
        assert np.array_equal(routed_a, routed_b)
        assert not np.array_equal(routed_a, routed_c)


class TestAliases:
    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("h", "kg"),
            ("hash", "kg"),
            ("shuffle", "sg"),
            ("partial-key-grouping", "pkg"),
            ("lpt", "off-greedy"),
            ("flux", "kg-rebalance"),
            ("ring-pkg", "ch-pkg"),
        ],
    )
    def test_alias_resolves(self, alias, canonical):
        assert resolve_scheme_name(alias) == canonical
        assert type(make_partitioner(alias, 4)) is type(
            make_partitioner(canonical, 4)
        )

    def test_case_insensitive(self):
        assert resolve_scheme_name("PKG") == "pkg"
        assert isinstance(make_partitioner("PKG", 4), PartialKeyGrouping)

    def test_unknown_scheme_lists_known(self):
        with pytest.raises(ValueError, match="unknown partitioning scheme"):
            make_partitioner("magic", 4)  # repro: noqa[REPRO005]
        with pytest.raises(ValueError, match="pkg"):
            make_partitioner("magic", 4)  # repro: noqa[REPRO005]


class TestSpecStrings:
    def test_parse_plain(self):
        assert parse_spec("pkg") == ("pkg", {})

    def test_parse_params_with_coercion(self):
        name, params = parse_spec("kg-rebalance:interval=500,threshold=0.25")
        assert name == "kg-rebalance"
        assert params == {"interval": 500, "threshold": 0.25}
        assert isinstance(params["interval"], int)

    def test_parse_whitespace_and_case(self):
        assert parse_spec(" PKG : d = 3 ")[1] == {"d": 3}

    def test_pkg_d_shorthand(self):
        p = make_partitioner("pkg:d=3", 10)
        assert p.num_choices == 3

    def test_rebalance_params_applied(self):
        p = make_partitioner("kg-rebalance:interval=500,threshold=0.25", 6)
        assert isinstance(p, RebalancingKeyGrouping)
        assert p.check_interval == 500
        assert p.imbalance_threshold == 0.25

    def test_ch_pkg_vnodes(self):
        p = make_partitioner("ch-pkg:d=2,vnodes=16", 6)
        assert isinstance(p, ConsistentPartialKeyGrouping)
        assert p.ring.virtual_nodes == 16

    def test_seed_in_spec_wins_over_argument(self):
        p = make_partitioner("pkg:seed=9", 10, seed=1)
        q = make_partitioner("pkg", 10, seed=9)
        assert np.array_equal(p.route_chunk(KEYS), q.route_chunk(KEYS))

    @pytest.mark.parametrize(
        "bad",
        ["", "  ", ":d=2", "pkg:d", "pkg:d=", "pkg:=3", "pkg:d==3,"],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            make_partitioner(bad, 4)

    def test_unknown_param_raises_with_valid_list(self):
        with pytest.raises(ValueError, match="does not accept parameter"):
            make_partitioner("pkg:bogus=1", 4)  # repro: noqa[REPRO005]
        with pytest.raises(ValueError, match="num_choices"):
            make_partitioner("pkg:bogus=1", 4)  # repro: noqa[REPRO005]

    def test_param_on_scheme_without_it_raises(self):
        with pytest.raises(ValueError):
            make_partitioner("sg:d=3", 4)  # repro: noqa[REPRO005]


class TestKwargOverrides:
    def test_kwargs_build_scheme(self):
        p = make_partitioner("pkg", 8, num_choices=4)
        assert p.num_choices == 4

    def test_kwargs_override_spec_params(self):
        p = make_partitioner("pkg:d=2", 8, d=4)
        assert p.num_choices == 4

    def test_kwargs_understand_short_aliases(self):
        p = make_partitioner("pkg", 8, d=3)
        assert p.num_choices == 3

    def test_invalid_kwarg_raises(self):
        with pytest.raises(ValueError, match="does not accept"):
            make_partitioner("kg", 8, num_choices=3)


class TestInstanceAndClassTargets:
    def test_instance_passthrough(self):
        p = PartialKeyGrouping(7)
        assert make_partitioner(p, 7) is p

    def test_instance_worker_mismatch_raises(self):
        with pytest.raises(ValueError, match="num_workers"):
            make_partitioner(PartialKeyGrouping(7), 8)

    def test_instance_with_kwargs_raises(self):
        with pytest.raises(ValueError, match="already-built"):
            make_partitioner(PartialKeyGrouping(7), 7, d=3)

    def test_registered_class_target(self):
        p = make_partitioner(KeyGrouping, 5, seed=2)
        assert isinstance(p, KeyGrouping)
        assert p.num_workers == 5
