"""REPRO005 fixture: resolvable specs and non-literal calls pass."""

from repro.api.registry import make_partitioner


def plain_scheme():
    return make_partitioner("pkg", 8)


def parameterised_scheme():
    return make_partitioner("kg-rebalance:interval=500,threshold=0.25", 6)


def aliased_param():
    return make_partitioner("pkg:d=3", 8)


def dynamic_spec(spec):
    # Non-literal first arguments are out of static reach.
    return make_partitioner(spec, 8)
