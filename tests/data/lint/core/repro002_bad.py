"""REPRO002 fixture (under a ``core`` dir => hot path): impurities."""

import time
from datetime import datetime
from time import perf_counter


def builtin_hash_route(key, num_workers):
    return hash(key) % num_workers  # line 9: PYTHONHASHSEED-salted


def wall_clock_metric():
    return time.time()  # line 13: wall clock


def aliased_clock():
    return perf_counter()  # line 17: wall clock via from-import


def date_stamp():
    return datetime.now()  # line 21: wall clock
