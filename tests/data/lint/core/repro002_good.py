"""REPRO002 fixture: seeded hashing and simulated time pass."""


def seeded_route(hash_fn, key, num_workers):
    return hash_fn(key) % num_workers


def simulated_time(timestamps, i):
    return float(timestamps[i])


class Clock:
    def __init__(self):
        self.now = 0.0

    def advance(self, dt):
        self.now += dt
        return self.now
