"""REPRO002 fixture: runtime clock reads carry explicit suppressions.

The sharded runtime measures real elapsed time on purpose (enqueue
stamps feed the sojourn sketch); each read is signed off inline.
"""

import time


def stamp_enqueue(indices):
    now = time.perf_counter()  # repro: noqa[REPRO002] - enqueue stamp
    return [(i, now) for i in indices]


def sleep_is_not_a_clock_read(interval):
    # time.sleep does not *read* the clock; no suppression needed.
    time.sleep(interval)


def flush_stage(stage_ids, fill, stamp_lane):
    # One signed-off stamp per coalesced flush, shared by the batch.
    before = time.perf_counter()  # repro: noqa[REPRO002] - flush stamp
    stamp_lane[:fill] = before
    return stage_ids[:fill], stamp_lane[:fill]
