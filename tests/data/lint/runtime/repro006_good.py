"""Fixture: deadline-bounded blocking the rule must accept."""

import queue
import time


def bounded_join(proc):
    proc.join(timeout=5.0)
    if proc.is_alive():
        proc.terminate()


def bounded_get(results):
    try:
        return results.get(timeout=0.05)
    except queue.Empty:
        return None


def loop_with_raise(ring, deadline):
    waited = 0.0
    while True:
        if not ring.empty():
            return ring.pop()
        if waited >= deadline:
            raise TimeoutError("no ring progress")
        time.sleep(0.001)
        waited += 0.001


def loop_with_break(ring):
    while True:
        if ring.empty():
            break
        ring.pop()


def condition_loop(loop):
    # State-condition loops are the deadline logic's job, not this
    # rule's: accepted as-is.
    while not loop.dead:
        loop.step()


def string_join(parts):
    return ",".join(parts)


def dict_get(mapping, key):
    return mapping.get(key, 0)


def nested_loop_with_return(items):
    while True:
        for item in items:
            if item:
                return item
