"""Fixture: unbounded blocking the runtime must never ship."""

import time


def bare_join(proc):
    proc.join()  # line 7: blocks forever on a wedged child


def bare_queue_get(results):
    return results.get()  # line 11: blocks forever on a dead producer


def bare_pipe_recv(conn):
    return conn.recv()  # line 15: blocks forever on a dead peer


def spin_forever(ring):
    while True:  # line 19: nothing can end this wait
        if ring.empty():
            time.sleep(0.001)


def spin_forever_constant(ring):
    while 1:  # line 25: constant-true spelled as an int
        time.sleep(0.001)
