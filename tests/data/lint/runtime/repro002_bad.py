"""REPRO002 fixture: unsuppressed clock reads in a runtime/ module."""

import time
from time import perf_counter


def stamp_enqueue(indices):
    # line 9: wall-clock read with no repro: noqa sign-off
    return [(i, time.perf_counter()) for i in indices]


def worker_step(ring):
    now = perf_counter()  # line 13: from-import resolves the same
    return ring, now


def flush_stage(stage_ids, fill, stamp_lane):
    # line 19: coalesced-flush stamp read without a sign-off
    before = time.perf_counter()
    stamp_lane[:fill] = before
    return stage_ids[:fill], stamp_lane[:fill]
