"""REPRO001 fixture: seeded / threaded randomness is fine."""

import random

import numpy as np


def seeded_generator(seed):
    return np.random.default_rng(seed)


def seeded_keyword():
    return np.random.default_rng(seed=7)


def threaded_generator(rng, n):
    return rng.random(n)


def local_stdlib_instance(seed):
    return random.Random(seed).random()


def seeded_spawn(rng):
    return rng.spawn(2)
