"""Suppression fixture: every finding here is noqa'd away but one."""

import random

import numpy as np
from repro.api.registry import make_partitioner


def bare_noqa():
    return np.random.default_rng()  # repro: noqa


def scoped_noqa():
    return random.random()  # repro: noqa[REPRO001]


def multi_rule_noqa():
    return make_partitioner("no-such-scheme", 4)  # repro: noqa[REPRO001,REPRO005]


def wrong_rule_noqa():
    # Suppressing a different rule does NOT hide the REPRO001 finding.
    return np.random.default_rng()  # repro: noqa[REPRO005]
