"""REPRO004 fixture: unpicklable functions shipped to child processes."""

import multiprocessing as mp
from multiprocessing import Process

from repro.core.parallel import parallel_map


def run_sweep(cells, jobs):
    return parallel_map(lambda cell: cell * 2, cells, jobs=jobs)  # line 10


def run_closure_sweep(cells, jobs, factor):
    def scaled_cell(cell):  # nested => closure
        return cell * factor

    return parallel_map(scaled_cell, cells, jobs=jobs)  # line 17


def spawn_lambda_worker(spec):
    return Process(target=lambda: spec.run(), daemon=True)  # line 21


def spawn_closure_worker(spec):
    def entry():  # nested => closure
        spec.run()

    return mp.Process(target=entry)  # line 28
