"""REPRO004 fixture: unpicklable functions handed to parallel_map."""

from repro.core.parallel import parallel_map


def run_sweep(cells, jobs):
    return parallel_map(lambda cell: cell * 2, cells, jobs=jobs)  # line 7


def run_closure_sweep(cells, jobs, factor):
    def scaled_cell(cell):  # nested => closure
        return cell * factor

    return parallel_map(scaled_cell, cells, jobs=jobs)  # line 14
