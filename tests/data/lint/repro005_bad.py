"""REPRO005 fixture: spec strings that do not resolve via the registry."""

from repro.api import run
from repro.api.registry import make_partitioner, resolve_scheme_name


def unknown_scheme():
    return make_partitioner("pkgg:d=3", 8)  # line 8: typo'd name


def unknown_param():
    return make_partitioner("pkg:workers=8", 8)  # line 12: bad param


def resolve_typo():
    return resolve_scheme_name("partial-kg")  # line 16: unknown alias


def facade_typo(keys):
    return run("kg-rebalancing:interval=100", keys=keys, num_workers=4)  # line 20


def fault_bad_param():
    return parse_fault("kill:w=1@n=5000:factor=2")  # line 24: kill takes none


def fault_plan_literals():
    return FaultPlan.parse(
        ["stall:w=0@n=100", "slow:w=9@x=3"], seed=7  # line 29: bad trigger
    )
