"""REPRO003 fixture: a contract-conforming registered scheme."""

from repro.api.registry import register
from repro.partitioning.base import Partitioner


@register("fixture-good")
class GoodScheme(Partitioner):
    def route(self, key, now=0.0):
        return 0

    def route_chunk(self, keys, timestamps=None):
        return keys


class UnregisteredHelper:
    """Not @register-ed, so the contract does not apply."""

    def route_chunk(self, anything, at_all=0):
        return anything
