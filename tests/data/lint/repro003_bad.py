"""REPRO003 fixture: registered classes breaking the chunk contract."""

from repro.api.registry import register
from repro.partitioning.base import Partitioner


@register("fixture-no-chunk")
class NoChunk(Partitioner):  # line 8: no route_chunk at all
    def route(self, key, now=0.0):
        return 0


@register("fixture-bad-sig")
class BadSignature(Partitioner):
    def route(self, key, now=0.0):
        return 0

    def route_chunk(self, stream, ts=None):  # line 18: renamed params
        return stream


@register("fixture-revived-shim")
class RevivedShim(Partitioner):
    def route(self, key, now=0.0):
        return 0

    def route_chunk(self, keys, timestamps=None):
        return keys

    def route_stream(self, keys, timestamps=None):  # line 30: removed API
        return self.route_chunk(keys, timestamps)
