"""REPRO001 fixture: every flavour of unseeded randomness."""

import random

import numpy as np
from numpy.random import default_rng


def entropy_generator():
    return np.random.default_rng()  # line 10: no seed


def legacy_state():
    return np.random.RandomState()  # line 14: no seed


def numpy_global_draw(n):
    return np.random.rand(n)  # line 18: hidden global state


def numpy_global_seed():
    np.random.seed(42)  # line 22: still global state


def stdlib_global():
    return random.random()  # line 26: stdlib global state


def stdlib_choice(items):
    return random.choice(items)  # line 30: stdlib global state


def aliased_import():
    return default_rng()  # line 34: no seed, via from-import
