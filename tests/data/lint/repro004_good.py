"""REPRO004 fixture: module-level cell functions pickle fine."""

import multiprocessing as mp

from repro.core.parallel import parallel_map


def _double_cell(cell):
    return cell * 2


def run_sweep(cells, jobs):
    return parallel_map(_double_cell, cells, jobs=jobs)


def local_map_is_fine(cells):
    # builtin map with a lambda never crosses a process boundary.
    return list(map(lambda c: c * 2, cells))


def _worker_main(spec):
    return spec


def spawn_worker(spec):
    # Module-level target resolves by qualified name under spawn.
    return mp.Process(target=_worker_main, args=(spec,), daemon=True)
