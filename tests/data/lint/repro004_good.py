"""REPRO004 fixture: module-level cell functions pickle fine."""

from repro.core.parallel import parallel_map


def _double_cell(cell):
    return cell * 2


def run_sweep(cells, jobs):
    return parallel_map(_double_cell, cells, jobs=jobs)


def local_map_is_fine(cells):
    # builtin map with a lambda never crosses a process boundary.
    return list(map(lambda c: c * 2, cells))
