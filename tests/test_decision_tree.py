"""Tests for the streaming parallel decision tree (Section VI-B)."""

import numpy as np
import pytest

from repro.applications import StreamingParallelDecisionTree
from repro.applications.decision_tree import TreeNode, entropy
from repro.partitioning import PartialKeyGrouping, ShuffleGrouping


def separable_data(n=3000, num_features=4, seed=0, threshold=0.3, feature=1):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, num_features))
    y = (X[:, feature] > threshold).astype(int)
    return X, y


class TestEntropy:
    def test_pure_is_zero(self):
        assert entropy({0: 10}) == 0.0

    def test_balanced_binary_is_ln2(self):
        assert entropy({0: 5, 1: 5}) == pytest.approx(np.log(2))

    def test_empty_is_zero(self):
        assert entropy({}) == 0.0


class TestTreeNode:
    def test_leaf_detection(self):
        node = TreeNode(node_id=0, depth=0)
        assert node.is_leaf
        node.feature = 1
        assert not node.is_leaf

    def test_majority_class(self):
        node = TreeNode(node_id=0, depth=0, class_counts={0: 3, 1: 7})
        assert node.majority_class() == 1

    def test_majority_empty(self):
        assert TreeNode(node_id=0, depth=0).majority_class() is None


class TestTraining:
    def test_learns_separable_data_pkg(self):
        X, y = separable_data()
        tree = StreamingParallelDecisionTree(
            PartialKeyGrouping(6), num_features=4, num_classes=2
        )
        tree.fit_stream(X, y)
        assert tree.num_leaves >= 2  # it split
        assert tree.accuracy(X, y) > 0.9

    def test_learns_separable_data_sg(self):
        X, y = separable_data()
        tree = StreamingParallelDecisionTree(
            ShuffleGrouping(6), num_features=4, num_classes=2
        )
        tree.fit_stream(X, y)
        assert tree.accuracy(X, y) > 0.9

    def test_split_feature_is_informative(self):
        X, y = separable_data(feature=2)
        tree = StreamingParallelDecisionTree(
            PartialKeyGrouping(6), num_features=4, num_classes=2, max_depth=1
        )
        tree.fit_stream(X, y)
        assert tree.root.feature == 2
        assert abs(tree.root.threshold - 0.3) < 0.3

    def test_max_depth_respected(self):
        X, y = separable_data(6000)
        tree = StreamingParallelDecisionTree(
            PartialKeyGrouping(6), num_features=4, num_classes=2, max_depth=2
        )
        tree.fit_stream(X, y)
        assert tree.depth <= 2

    def test_pure_stream_never_splits(self):
        X = np.random.default_rng(0).normal(size=(1000, 3))
        y = np.zeros(1000, dtype=int)
        tree = StreamingParallelDecisionTree(
            PartialKeyGrouping(4), num_features=3, num_classes=2
        )
        tree.fit_stream(X, y)
        assert tree.num_leaves == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingParallelDecisionTree(
                PartialKeyGrouping(4), num_features=0, num_classes=2
            )
        with pytest.raises(ValueError):
            StreamingParallelDecisionTree(
                PartialKeyGrouping(4), num_features=3, num_classes=1
            )


class TestCosts:
    def test_pkg_histogram_bound(self):
        X, y = separable_data()
        tree = StreamingParallelDecisionTree(
            PartialKeyGrouping(8), num_features=4, num_classes=2
        )
        tree.fit_stream(X, y)
        # 2 * D * C * L (Section VI-B)
        assert tree.histogram_count() <= 2 * 4 * 2 * tree.num_leaves

    def test_sg_histogram_count_exceeds_pkg(self):
        X, y = separable_data()
        pkg = StreamingParallelDecisionTree(
            PartialKeyGrouping(8), num_features=4, num_classes=2
        )
        sg = StreamingParallelDecisionTree(
            ShuffleGrouping(8), num_features=4, num_classes=2
        )
        pkg.fit_stream(X, y)
        sg.fit_stream(X, y)
        assert pkg.histogram_count() < sg.histogram_count()

    def test_merge_operations_fewer_under_pkg(self):
        X, y = separable_data()
        pkg = StreamingParallelDecisionTree(
            PartialKeyGrouping(8), num_features=4, num_classes=2
        )
        sg = StreamingParallelDecisionTree(
            ShuffleGrouping(8), num_features=4, num_classes=2
        )
        pkg.fit_stream(X, y)
        sg.fit_stream(X, y)
        assert pkg.stats.merge_operations < sg.stats.merge_operations

    def test_split_drops_old_histograms(self):
        X, y = separable_data()
        tree = StreamingParallelDecisionTree(
            PartialKeyGrouping(6), num_features=4, num_classes=2, max_depth=1
        )
        tree.fit_stream(X, y)
        assert tree.num_leaves == 2
        root_id = tree.root.node_id
        for hists in tree.worker_histograms:
            assert all(key[0] != root_id for key in hists)

    def test_worker_loads_bounded_by_messages(self):
        X, y = separable_data()
        tree = StreamingParallelDecisionTree(
            PartialKeyGrouping(6), num_features=4, num_classes=2
        )
        tree.fit_stream(X, y)
        loads = tree.worker_loads()
        # Splits discard the split leaf's histograms, so live totals
        # can only undercount the messages ever routed.
        assert 0 < sum(loads) <= tree.stats.feature_messages

    def test_stats_counts(self):
        X, y = separable_data(500)
        tree = StreamingParallelDecisionTree(
            PartialKeyGrouping(6), num_features=4, num_classes=2
        )
        tree.fit_stream(X, y)
        assert tree.stats.instances == 500
        assert tree.stats.feature_messages == 500 * 4
