"""Tests for the Table I dataset registry."""

import numpy as np
import pytest

from repro.streams.datasets import DATASETS, dataset_stream, get_dataset, list_datasets


class TestRegistry:
    def test_all_eight_datasets_present(self):
        assert list_datasets() == ["WP", "TW", "CT", "LN1", "LN2", "LJ", "SL1", "SL2"]

    def test_lookup_case_insensitive(self):
        assert get_dataset("wp").symbol == "WP"

    def test_unknown_symbol(self):
        with pytest.raises(KeyError):
            get_dataset("NOPE")

    def test_paper_statistics_recorded(self):
        wp = get_dataset("WP")
        assert wp.paper_messages == 22e6
        assert wp.paper_p1_percent == 9.32

    def test_scale_factor(self):
        wp = get_dataset("WP")
        assert wp.scale_factor == pytest.approx(1_000_000 / 22e6)


class TestCalibration:
    @pytest.mark.parametrize("symbol", ["WP", "TW", "SL1", "SL2", "LJ"])
    def test_zipf_datasets_hit_paper_p1(self, symbol):
        spec = get_dataset(symbol)
        keys = spec.stream(150_000, seed=3)
        assert spec.measured_p1(keys) * 100 == pytest.approx(
            spec.paper_p1_percent, rel=0.12
        )

    @pytest.mark.parametrize("symbol", ["LN1", "LN2"])
    def test_lognormal_datasets_hit_paper_p1(self, symbol):
        spec = get_dataset(symbol)
        keys = spec.stream(150_000, seed=3)
        assert spec.measured_p1(keys) * 100 == pytest.approx(
            spec.paper_p1_percent, rel=0.1
        )

    def test_ct_drift_global_p1(self):
        spec = get_dataset("CT")
        keys = spec.stream(345_000, seed=7)
        # Drift dilutes the global head; the boost recalibrates it.
        assert spec.measured_p1(keys) * 100 == pytest.approx(3.29, rel=0.25)


class TestStreams:
    def test_default_length(self):
        spec = get_dataset("LN2")
        assert spec.stream().size == spec.default_messages

    def test_explicit_length(self):
        assert get_dataset("WP").stream(1234).size == 1234

    def test_seed_reproducibility(self):
        a = get_dataset("WP").stream(5000, seed=1)
        b = get_dataset("WP").stream(5000, seed=1)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = get_dataset("WP").stream(5000, seed=1)
        b = get_dataset("WP").stream(5000, seed=2)
        assert not np.array_equal(a, b)

    def test_keys_within_universe(self):
        spec = get_dataset("CT")
        keys = spec.stream(50_000, seed=0)
        assert keys.min() >= 0
        assert keys.max() < spec.num_keys

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            get_dataset("WP").stream(-5)

    def test_dataset_stream_shorthand(self):
        keys = dataset_stream("LN2", 1000, seed=4)
        assert keys.size == 1000

    def test_measured_p1_empty(self):
        assert get_dataset("WP").measured_p1(np.array([], dtype=np.int64)) == 0.0

    def test_unknown_kind_raises(self):
        import dataclasses

        spec = dataclasses.replace(get_dataset("WP"), kind="banana")
        with pytest.raises(ValueError):
            spec.distribution()
