"""Native C kernels vs pure-Python fallbacks.

The compiled kernels are an optional accelerator: every routing
decision they make must match the pure-Python chunk loops bit for bit.
These tests force both implementations (via ``REPRO_NO_NATIVE``) and
compare; they skip where no compiler is available.
"""

import numpy as np
import pytest

from repro._native import build as native_build
from repro._native import get_kernels
from repro.core.engine import (
    InterleavedRouter,
    bind_route_chunk,
    greedy_route_chunk,
    least_loaded_chunk,
)

pytestmark = pytest.mark.skipif(
    get_kernels() is None, reason="no C compiler / native kernels unavailable"
)


@pytest.fixture
def forced_python(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    assert get_kernels() is None


def random_choices(m, d, num_workers, seed):
    return np.ascontiguousarray(
        np.random.default_rng(seed).integers(0, num_workers, size=(m, d)),
        dtype=np.int64,
    )


@pytest.mark.parametrize("d", [2, 3, 5])
def test_greedy_route_native_matches_python(monkeypatch, d):
    choices = random_choices(7_000, d, 9, seed=d)
    native_loads = np.zeros(9, dtype=np.int64)
    native_out = greedy_route_chunk(choices, native_loads)

    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    python_loads = np.zeros(9, dtype=np.int64)
    python_out = greedy_route_chunk(choices, python_loads)

    assert np.array_equal(native_out, python_out)
    assert np.array_equal(native_loads, python_loads)


def test_least_loaded_native_matches_python(monkeypatch):
    native_loads = np.array([3, 0, 5, 0, 1], dtype=np.int64)
    native_out = least_loaded_chunk(4_000, native_loads)

    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    python_loads = np.array([3, 0, 5, 0, 1], dtype=np.int64)
    python_out = least_loaded_chunk(4_000, python_loads)

    assert np.array_equal(native_out, python_out)
    assert np.array_equal(native_loads, python_loads)


@pytest.mark.parametrize("with_choices", [True, False])
def test_bind_route_native_matches_python(monkeypatch, with_choices):
    rng = np.random.default_rng(4)
    codes = np.ascontiguousarray(rng.integers(0, 300, size=5_000), dtype=np.int64)
    choices = random_choices(5_000, 2, 6, seed=9) if with_choices else None

    native_table = np.full(300, -1, dtype=np.int64)
    native_loads = np.zeros(6, dtype=np.int64)
    native_out = bind_route_chunk(codes, choices, 6, native_table, native_loads)

    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    python_table = np.full(300, -1, dtype=np.int64)
    python_loads = np.zeros(6, dtype=np.int64)
    python_out = bind_route_chunk(codes, choices, 6, python_table, python_loads)

    assert np.array_equal(native_out, python_out)
    assert np.array_equal(native_table, python_table)
    assert np.array_equal(native_loads, python_loads)


@pytest.mark.parametrize("mode", ["local", "global", "probing"])
def test_interleaved_native_matches_python(monkeypatch, mode):
    choices = random_choices(6_000, 2, 5, seed=1)
    sources = np.ascontiguousarray(np.arange(6_000) % 3, dtype=np.int64)
    times = np.arange(6_000, dtype=np.float64)
    period = 400.0 if mode == "probing" else 0.0

    native = InterleavedRouter(3, 5, mode, period)
    native_out = np.concatenate(
        [
            native.route(choices[i : i + 1_000], sources[i : i + 1_000],
                         times[i : i + 1_000] if mode == "probing" else None)
            for i in range(0, 6_000, 1_000)
        ]
    )

    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    python = InterleavedRouter(3, 5, mode, period)
    python_out = np.concatenate(
        [
            python.route(choices[i : i + 1_000], sources[i : i + 1_000],
                         times[i : i + 1_000] if mode == "probing" else None)
            for i in range(0, 6_000, 1_000)
        ]
    )

    assert np.array_equal(native_out, python_out)
    assert np.array_equal(native.true_loads, python.true_loads)
    if native.views is not None:
        assert np.array_equal(native.views, python.views)
    if native.next_probe is not None:
        assert np.array_equal(native.next_probe, python.next_probe)


def test_build_artifacts_are_content_addressed():
    path = native_build._shared_object_path()
    assert path.name.startswith("_kernels_")
    assert path.suffix == ".so"
    assert path.exists()  # built by the session that imported the kernels


def test_disable_env_round_trip(monkeypatch, forced_python):
    monkeypatch.delenv("REPRO_NO_NATIVE")
    assert get_kernels() is not None
