"""Tests for the message model."""

import numpy as np
import pytest

from repro.streams.message import Message, keys_of, stream_messages


class TestMessage:
    def test_fields(self):
        m = Message(1.5, "word", 42)
        assert (m.timestamp, m.key, m.value) == (1.5, "word", 42)

    def test_ordering_by_timestamp(self):
        assert Message(1.0, "b") < Message(2.0, "a")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Message(0.0, "k").key = "other"  # type: ignore[misc]

    def test_with_key(self):
        m = Message(3.0, "src", "payload")
        rekeyed = m.with_key("dst")
        assert rekeyed.key == "dst"
        assert rekeyed.timestamp == 3.0
        assert rekeyed.value == "payload"
        assert m.key == "src"  # original untouched


class TestStreamMessages:
    def test_timestamps_at_unit_rate(self):
        msgs = list(stream_messages(["a", "b", "c"]))
        assert [m.timestamp for m in msgs] == [0.0, 1.0, 2.0]

    def test_rate_scales_time(self):
        msgs = list(stream_messages(["a", "b"], rate=2.0))
        assert msgs[1].timestamp == pytest.approx(0.5)

    def test_values_zip(self):
        msgs = list(stream_messages(["a", "b"], values=[1, 2]))
        assert [m.value for m in msgs] == [1, 2]

    def test_start_offset(self):
        msgs = list(stream_messages(["a"], start=10.0))
        assert msgs[0].timestamp == 10.0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            list(stream_messages(["a"], rate=0.0))

    def test_ascending_timestamps(self):
        msgs = list(stream_messages(range(100), rate=3.7))
        times = [m.timestamp for m in msgs]
        assert times == sorted(times)

    def test_keys_of(self):
        msgs = list(stream_messages([5, 6, 7]))
        assert np.array_equal(keys_of(msgs), np.array([5, 6, 7]))
