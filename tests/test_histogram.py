"""Tests for the Ben-Haim & Tom-Tov streaming histogram."""

import numpy as np
import pytest

from repro.sketches import StreamingHistogram


class TestUpdate:
    def test_exact_below_budget(self):
        h = StreamingHistogram(8)
        for x in (1.0, 2.0, 3.0):
            h.update(x)
        assert h.bins == [(1.0, 1.0), (2.0, 1.0), (3.0, 1.0)]

    def test_duplicate_points_merge(self):
        h = StreamingHistogram(8)
        h.update(2.0)
        h.update(2.0)
        assert h.bins == [(2.0, 2.0)]

    def test_bin_budget_respected(self):
        h = StreamingHistogram(4)
        h.extend(np.linspace(0, 1, 100))
        assert len(h) <= 4

    def test_total_preserved_by_compression(self):
        h = StreamingHistogram(4)
        h.extend(range(50))
        assert h.total == 50
        assert sum(w for _, w in h.bins) == pytest.approx(50)

    def test_closest_bins_merge_first(self):
        h = StreamingHistogram(2)
        h.update(0.0)
        h.update(10.0)
        h.update(10.1)  # closest pair is (10, 10.1)
        cents = [c for c, _ in h.bins]
        assert cents[0] == 0.0
        assert cents[1] == pytest.approx(10.05)

    def test_weight_argument(self):
        h = StreamingHistogram(4)
        h.update(1.0, weight=5.0)
        assert h.total == 5.0

    def test_invalid_inputs(self):
        h = StreamingHistogram(4)
        with pytest.raises(ValueError):
            h.update(1.0, weight=0)
        with pytest.raises(ValueError):
            h.update(float("nan"))
        with pytest.raises(ValueError):
            StreamingHistogram(1)

    def test_mean_tracks_stream(self):
        h = StreamingHistogram(16)
        data = np.random.default_rng(0).normal(5.0, 1.0, 2000)
        h.extend(data)
        assert h.mean() == pytest.approx(data.mean(), abs=0.1)


class TestSum:
    def test_sum_empty(self):
        assert StreamingHistogram(4).sum(1.0) == 0.0

    def test_sum_below_all(self):
        h = StreamingHistogram(4)
        h.extend([1.0, 2.0])
        assert h.sum(0.0) == 0.0

    def test_sum_above_all(self):
        h = StreamingHistogram(4)
        h.extend([1.0, 2.0])
        assert h.sum(5.0) == 2.0

    def test_sum_monotone(self):
        h = StreamingHistogram(16)
        h.extend(np.random.default_rng(1).uniform(0, 10, 1000))
        points = np.linspace(-1, 11, 50)
        values = [h.sum(b) for b in points]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_sum_accuracy_on_uniform(self):
        h = StreamingHistogram(64)
        data = np.random.default_rng(2).uniform(0, 1, 5000)
        h.extend(data)
        for q in (0.25, 0.5, 0.75):
            true = (data <= q).sum()
            assert h.sum(q) == pytest.approx(true, rel=0.08)

    def test_sum_accuracy_on_gaussian(self):
        h = StreamingHistogram(64)
        data = np.random.default_rng(3).normal(0, 1, 5000)
        h.extend(data)
        true_median_rank = (data <= 0.0).sum()
        assert h.sum(0.0) == pytest.approx(true_median_rank, rel=0.08)


class TestUniform:
    def test_split_points_count(self):
        h = StreamingHistogram(32)
        h.extend(np.random.default_rng(4).uniform(0, 1, 2000))
        points = h.uniform(10)
        assert len(points) == 9

    def test_split_points_sorted(self):
        h = StreamingHistogram(32)
        h.extend(np.random.default_rng(5).normal(0, 1, 2000))
        points = h.uniform(8)
        assert points == sorted(points)

    def test_split_points_are_quantiles(self):
        h = StreamingHistogram(64)
        data = np.random.default_rng(6).uniform(0, 100, 5000)
        h.extend(data)
        median = h.uniform(2)[0]
        assert median == pytest.approx(50.0, abs=5.0)

    def test_empty_histogram(self):
        assert StreamingHistogram(4).uniform(4) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingHistogram(4).uniform(1)


class TestMerge:
    def test_totals_add(self):
        a, b = StreamingHistogram(8), StreamingHistogram(8)
        a.extend([1, 2, 3])
        b.extend([4, 5])
        assert a.merge(b).total == 5

    def test_merge_respects_budget(self):
        a, b = StreamingHistogram(8), StreamingHistogram(8)
        a.extend(range(50))
        b.extend(range(100, 150))
        assert len(a.merge(b)) <= 8

    def test_merge_equals_union_stream_approximately(self):
        rng = np.random.default_rng(7)
        data = rng.normal(0, 1, 4000)
        a, b = StreamingHistogram(64), StreamingHistogram(64)
        a.extend(data[:2000])
        b.extend(data[2000:])
        merged = a.merge(b)
        whole = StreamingHistogram(64)
        whole.extend(data)
        for q in (-1.0, 0.0, 1.0):
            assert merged.sum(q) == pytest.approx(whole.sum(q), rel=0.1)

    def test_merge_empty(self):
        a = StreamingHistogram(8)
        b = StreamingHistogram(8)
        a.extend([1.0])
        merged = a.merge(b)
        assert merged.total == 1.0

    def test_memory_bins(self):
        h = StreamingHistogram(8)
        h.extend(range(20))
        assert h.memory_bins() == len(h) <= 8
