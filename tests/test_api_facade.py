"""run() facade tests: dispatch, determinism, RunResult, deprecations."""

import warnings

import numpy as np
import pytest

from repro.api import RunResult, make_partitioner, run
from repro.simulation import simulate_stream
from repro.streams.distributions import ZipfKeyDistribution

KEYS = ZipfKeyDistribution(1.2, 5_000).sample(
    50_000, np.random.default_rng(0)
)


class TestFrequencyPath:
    def test_run_with_keys(self):
        result = run("pkg", keys=KEYS, num_workers=10, seed=3)
        assert isinstance(result, RunResult)
        assert result.scheme == "PKG"
        assert result.num_workers == 10
        assert result.num_messages == KEYS.size
        assert result.worker_loads.sum() == KEYS.size
        assert result.throughput is None
        assert result.latency_mean is None

    def test_matches_direct_simulate_stream(self):
        facade = run("pkg", keys=KEYS, num_workers=10, seed=3)
        direct = simulate_stream(
            KEYS, make_partitioner("pkg", 10, seed=3)
        )
        assert facade.average_imbalance == direct.average_imbalance
        assert list(facade.worker_loads) == list(direct.final_loads)

    def test_deterministic_for_fixed_seed(self):
        a = run("pkg", dataset="WP", num_workers=10, num_messages=30_000, seed=7)
        b = run("pkg", dataset="WP", num_workers=10, num_messages=30_000, seed=7)
        assert a.average_imbalance == b.average_imbalance
        assert list(a.worker_loads) == list(b.worker_loads)

    def test_different_seed_differs(self):
        a = run("kg", dataset="WP", num_workers=10, num_messages=30_000, seed=1)
        b = run("kg", dataset="WP", num_workers=10, num_messages=30_000, seed=2)
        assert list(a.worker_loads) != list(b.worker_loads)

    def test_spec_string_kwargs(self):
        d2 = run("pkg:d=2", keys=KEYS, num_workers=10)
        d4 = run("pkg:d=4", keys=KEYS, num_workers=10)
        assert d4.average_imbalance <= d2.average_imbalance

    def test_partitioner_instance_target(self):
        p = make_partitioner("pkg", 10, seed=3)
        result = run(p, keys=KEYS)  # num_workers inferred
        assert result.num_workers == 10

    def test_memory_entries_reported(self):
        potc = run("potc", keys=KEYS, num_workers=10)
        pkg = run("pkg", keys=KEYS, num_workers=10)
        assert potc.average_memory > 0  # routing table entries
        assert pkg.average_memory == 0  # PKG keeps no table

    def test_multi_source(self):
        result = run("pkg", keys=KEYS, num_workers=10, num_sources=5, seed=3)
        assert result.num_sources == 5
        assert result.worker_loads.sum() == KEYS.size

    def test_multi_source_rejects_instance(self):
        p = make_partitioner("pkg", 10)
        with pytest.raises(ValueError, match="per source"):
            run(p, keys=KEYS, num_sources=5)

    def test_fraction_properties(self):
        result = run("kg", keys=KEYS, num_workers=10)
        assert result.average_imbalance_fraction == pytest.approx(
            result.average_imbalance / KEYS.size
        )
        assert "W=10" in result.summary()


class TestArgumentValidation:
    def test_scheme_requires_num_workers(self):
        with pytest.raises(ValueError, match="num_workers"):
            run("pkg", keys=KEYS)

    def test_needs_keys_or_distribution(self):
        with pytest.raises(ValueError, match="keys"):
            run("pkg", num_workers=10)

    def test_keys_and_dataset_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            run("pkg", keys=KEYS, dataset="WP", num_workers=10)

    def test_distribution_and_dataset_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            run(
                "pkg",
                distribution=ZipfKeyDistribution(1.2, 100),
                dataset="WP",
                num_workers=10,
            )

    def test_topology_rejects_frequency_only_arguments(self):
        from repro.api import Topology

        topo = (
            Topology()
            .source(ZipfKeyDistribution(1.2, 100))
            .partition_by("pkg")
            .workers(4, cpu_delay=0.2e-3)
            .timing(2.0, 0.5)
        )
        with pytest.raises(ValueError, match="seed"):
            run(topo, seed=99)
        with pytest.raises(ValueError, match="num_workers"):
            run(topo, num_workers=7)
        with pytest.raises(ValueError, match="num_sources"):
            run(topo, num_sources=3)
        with pytest.raises(ValueError, match="d"):
            run(topo, d=3)


class TestBackwardCompat:
    def test_schemes_dict_still_works_with_deprecation(self):
        import repro.dspe.topology as topo_module

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            schemes = topo_module.SCHEMES
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        # Old call shape: factory(num_workers, seed) -> Partitioner,
        # and the original key set, as a stable (mutable) object.
        assert sorted(schemes) == ["kg", "pkg", "sg"]
        for name in ("kg", "sg", "pkg"):
            p = schemes[name](5, 0)
            assert p.num_workers == 5
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert topo_module.SCHEMES is schemes

    def test_run_wordcount_accepts_spec_strings(self):
        from repro.dspe import ClusterConfig, run_wordcount

        metrics = run_wordcount(
            "pkg:d=3",
            ZipfKeyDistribution(1.05, 5_000),
            ClusterConfig(duration=2.0, warmup=0.5),
        )
        assert metrics.scheme == "PKG"
        assert metrics.throughput > 0

    def test_direct_construction_still_works(self):
        from repro.partitioning import PartialKeyGrouping

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # must NOT warn
            p = PartialKeyGrouping(10)
        assert p.route(42) in p.candidates(42)

    def test_top_level_exports(self):
        import repro

        for name in ("make_partitioner", "Topology", "run", "RunResult"):
            assert name in repro.__all__
            assert hasattr(repro, name)
