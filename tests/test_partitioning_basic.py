"""Tests for key grouping, shuffle grouping and the Partitioner base."""

import numpy as np
import pytest

from repro.hashing import HashFamily
from repro.partitioning import KeyGrouping, ShuffleGrouping
from repro.partitioning.base import Partitioner


class TestBase:
    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            KeyGrouping(0)

    def test_abstract(self):
        with pytest.raises(TypeError):
            Partitioner(3)  # type: ignore[abstract]

    def test_default_memory_entries(self):
        assert KeyGrouping(3).memory_entries() == 0


class TestKeyGrouping:
    def test_deterministic_per_key(self):
        kg = KeyGrouping(7)
        assert all(kg.route(42) == kg.route(42) for _ in range(10))

    def test_in_range(self):
        kg = KeyGrouping(7)
        assert all(0 <= kg.route(k) < 7 for k in range(1000))

    def test_candidates_single(self):
        kg = KeyGrouping(5)
        assert kg.candidates("x") == (kg.route("x"),)

    def test_same_seed_agrees_across_instances(self):
        a, b = KeyGrouping(9, seed=3), KeyGrouping(9, seed=3)
        assert all(a.route(k) == b.route(k) for k in range(200))

    def test_route_chunk_matches_scalar(self):
        kg = KeyGrouping(6, seed=1)
        keys = np.arange(500, dtype=np.int64)
        vec = kg.route_chunk(keys)
        assert all(int(vec[i]) == kg.route(i) for i in range(0, 500, 41))

    def test_route_chunk_string_keys(self):
        kg = KeyGrouping(6)
        words = np.array(["a", "b", "a", "c"])
        routed = kg.route_chunk(words)
        assert routed[0] == routed[2]

    def test_spreads_keys_roughly_uniformly(self):
        kg = KeyGrouping(10, seed=2)
        loads = np.bincount(kg.route_chunk(np.arange(100_000)), minlength=10)
        assert loads.max() < 1.1 * loads.mean()

    def test_skewed_stream_imbalanced(self):
        # The motivating failure: one hot key -> one hot worker.
        kg = KeyGrouping(4)
        keys = np.zeros(1000, dtype=np.int64)
        loads = np.bincount(kg.route_chunk(keys), minlength=4)
        assert loads.max() == 1000

    def test_hash_family_injection(self):
        family = HashFamily(size=1, seed=77)
        kg = KeyGrouping(5, hash_function=family[0])
        assert kg.route(3) == family[0](3) % 5


class TestShuffleGrouping:
    def test_round_robin_cycle(self):
        sg = ShuffleGrouping(3)
        assert [sg.route("any") for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_offset(self):
        sg = ShuffleGrouping(4, offset=2)
        assert sg.route("x") == 2
        assert sg.route("x") == 3
        assert sg.route("x") == 0

    def test_ignores_key(self):
        sg = ShuffleGrouping(2)
        assert sg.route("a") == 0
        assert sg.route("a") == 1

    def test_route_chunk_continues_cycle(self):
        sg = ShuffleGrouping(3)
        sg.route("x")  # advance to 1
        routed = sg.route_chunk(np.arange(5))
        assert routed.tolist() == [1, 2, 0, 1, 2]
        assert sg.route("x") == 0

    def test_perfect_balance(self):
        sg = ShuffleGrouping(8)
        loads = np.bincount(sg.route_chunk(np.zeros(8000, dtype=np.int64)))
        assert loads.max() - loads.min() == 0

    def test_imbalance_at_most_one(self):
        sg = ShuffleGrouping(7)
        loads = np.bincount(sg.route_chunk(np.zeros(1000, dtype=np.int64)), minlength=7)
        assert loads.max() - loads.min() <= 1

    def test_reset(self):
        sg = ShuffleGrouping(5)
        sg.route("k")
        sg.reset()
        assert sg.route("k") == 0


class TestRouteStreamRemoved:
    def test_route_stream_is_gone(self):
        # The deprecated whole-stream shim was removed; route_chunk /
        # repro.core.engine.route_chunked are the only stream paths.
        assert not hasattr(Partitioner, "route_stream")
        kg = KeyGrouping(6, seed=1)
        with pytest.raises(AttributeError):
            kg.route_stream(np.arange(100, dtype=np.int64))
