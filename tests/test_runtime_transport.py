"""Transport-path invariants: coalescing never changes *where*.

The coalesced staging buffers and the counting-sort scatter are pure
throughput work -- they may change *when* a message reaches its ring,
never *which* worker it reaches or the order two messages for the same
worker arrive in.  These tests pin that contract as a property over
flush sizes, chunk sizes, schemes, and both backends:

* per-worker **counts** equal :func:`repro.core.engine.replay_stream`'s
  final loads for every registered scheme;
* per-worker **FIFO order** equals the replay's assignment order
  (captured via ``RuntimeConfig(capture_indices=True)``);
* :func:`repro.core.chunks.counting_scatter` is byte-identical to the
  stable ``np.argsort`` it replaced, native kernel and pure-Python
  fallback alike;
* a streaming :class:`~repro.core.chunks.ChunkSource` input routes
  identically to its materialised array.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import available_schemes, make_partitioner
from repro.core.chunks import ArrayChunkSource, counting_scatter
from repro.core.engine import replay_stream
from repro.runtime import RuntimeConfig, run_runtime, runtime_available
from repro.streams.datasets import get_dataset

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

STREAM = get_dataset("WP").stream(6_000, seed=7)

FLUSH_SIZES = (1, 7, 256, 4096)

needs_processes = pytest.mark.skipif(
    not runtime_available(), reason="process spawning or /dev/shm unavailable"
)


def _per_worker_order(result, replay, workers):
    """Assert captured per-worker index sequences equal replay order."""
    for report in result.worker_reports:
        w = report["worker_id"]
        expected = np.flatnonzero(replay.assignments == w)
        np.testing.assert_array_equal(report["indices"], expected)
    assert workers == len(result.worker_reports)


class TestFlushInvariance:
    @pytest.mark.parametrize("scheme", sorted(available_schemes()))
    @pytest.mark.parametrize("flush_size", FLUSH_SIZES)
    def test_counts_and_fifo_order_all_schemes(self, scheme, flush_size):
        workers = 4
        partitioner = make_partitioner(scheme, workers, seed=42)
        result = run_runtime(
            STREAM,
            partitioner,
            RuntimeConfig(
                mode="simulated", flush_size=flush_size, capture_indices=True
            ),
        )
        replay = replay_stream(
            STREAM,
            make_partitioner(scheme, workers, seed=42),
            keep_assignments=True,
        )
        np.testing.assert_array_equal(result.worker_loads, replay.final_loads)
        _per_worker_order(result, replay, workers)

    @given(
        flush_size=st.sampled_from(FLUSH_SIZES),
        chunk_size=st.sampled_from((64, 1_000, 4_096, 65_536)),
        scheme=st.sampled_from(("pkg", "kg", "sg", "jbsq")),
        workers=st.sampled_from((2, 4)),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_flush_by_chunk_grid(
        self, flush_size, chunk_size, scheme, workers
    ):
        """Counts + FIFO order hold on every flush x chunk grid."""
        keys = STREAM[:3_000]
        partitioner = make_partitioner(scheme, workers, seed=1)
        result = run_runtime(
            keys,
            partitioner,
            RuntimeConfig(
                mode="simulated",
                flush_size=flush_size,
                chunk_size=chunk_size,
                capture_indices=True,
            ),
        )
        replay = replay_stream(
            keys,
            make_partitioner(scheme, workers, seed=1),
            chunk_size=chunk_size,
            keep_assignments=True,
        )
        np.testing.assert_array_equal(result.worker_loads, replay.final_loads)
        _per_worker_order(result, replay, workers)

    @pytest.mark.parametrize("flush_size", [1, 256, 8192])
    @needs_processes
    def test_process_backend_fifo_order(self, flush_size):
        workers = 2
        result = run_runtime(
            STREAM,
            make_partitioner("pkg", workers, seed=42),
            RuntimeConfig(
                mode="process", flush_size=flush_size, capture_indices=True
            ),
        )
        replay = replay_stream(
            STREAM,
            make_partitioner("pkg", workers, seed=42),
            keep_assignments=True,
        )
        np.testing.assert_array_equal(result.worker_loads, replay.final_loads)
        _per_worker_order(result, replay, workers)

    def test_flush_smaller_than_capacity_still_sheds_on_drop(self):
        # "drop" relies on full rings: a flush larger than capacity is
        # clamped by the push path, so shedding still happens and the
        # accounting identity holds at any flush size.
        result = run_runtime(
            STREAM,
            make_partitioner("pkg", 2, seed=42),
            RuntimeConfig(
                mode="simulated", policy="drop", capacity=128, flush_size=4096
            ),
        )
        assert result.dropped > 0
        np.testing.assert_array_equal(
            result.worker_loads + result.dropped_per_worker,
            result.routed_loads,
        )


class TestStageBreakdown:
    def test_stage_seconds_present_and_positive(self):
        result = run_runtime(
            STREAM,
            make_partitioner("pkg", 4, seed=42),
            RuntimeConfig(mode="simulated"),
        )
        assert set(result.stage_seconds) == {
            "route", "scatter", "flush_stall", "drain", "recovery"
        }
        for stage, seconds in result.stage_seconds.items():
            assert seconds >= 0.0, stage
        assert sum(result.stage_seconds.values()) <= result.wall_seconds
        assert result.transport_overhead_ratio >= 1.0
        assert result.flushes >= 4  # at least one flush per worker

    def test_flush_count_scales_with_flush_size(self):
        small = run_runtime(
            STREAM,
            make_partitioner("sg", 2, seed=42),
            RuntimeConfig(mode="simulated", flush_size=64),
        )
        large = run_runtime(
            STREAM,
            make_partitioner("sg", 2, seed=42),
            RuntimeConfig(mode="simulated", flush_size=8192),
        )
        assert small.flushes > large.flushes
        np.testing.assert_array_equal(small.worker_loads, large.worker_loads)

    def test_flush_size_validated(self):
        with pytest.raises(ValueError, match="flush_size"):
            RuntimeConfig(flush_size=0)


class TestCountingScatter:
    def _reference(self, dest, num_buckets, base):
        counts = np.bincount(dest, minlength=num_buckets)
        boundaries = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)
        order = np.argsort(dest, kind="stable").astype(np.int64) + base
        return counts, boundaries, order

    @pytest.mark.parametrize("base", [0, 5, 131_072])
    def test_matches_stable_argsort(self, base):
        rng = np.random.default_rng(3)
        dest = rng.integers(0, 8, size=50_000).astype(np.int64)
        counts, boundaries, grouped = counting_scatter(dest, 8, base=base)
        ref_counts, ref_bounds, ref_order = self._reference(dest, 8, base)
        np.testing.assert_array_equal(counts, ref_counts)
        np.testing.assert_array_equal(boundaries, ref_bounds)
        np.testing.assert_array_equal(grouped, ref_order)

    def test_python_fallback_identical(self, monkeypatch):
        rng = np.random.default_rng(9)
        dest = rng.integers(0, 5, size=20_000).astype(np.int64)
        native = counting_scatter(dest, 5, base=17)
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        fallback = counting_scatter(dest, 5, base=17)
        for a, b in zip(native, fallback):
            np.testing.assert_array_equal(a, b)

    def test_empty_chunk(self):
        counts, boundaries, grouped = counting_scatter(
            np.empty(0, dtype=np.int64), 3
        )
        assert counts.tolist() == [0, 0, 0]
        assert boundaries.tolist() == [0, 0, 0, 0]
        assert grouped.size == 0

    def test_single_bucket_preserves_order(self):
        dest = np.zeros(100, dtype=np.int64)
        _, _, grouped = counting_scatter(dest, 1, base=40)
        np.testing.assert_array_equal(grouped, np.arange(40, 140))

    def test_out_of_range_destination_raises(self):
        with pytest.raises(ValueError):
            counting_scatter(np.array([0, 3], dtype=np.int64), 2)

    @given(
        st.lists(st.integers(min_value=0, max_value=6), max_size=500),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_grouped_is_stable_permutation(self, dests, base):
        dest = np.asarray(dests, dtype=np.int64)
        counts, boundaries, grouped = counting_scatter(dest, 7, base=base)
        assert int(counts.sum()) == dest.size
        ref = np.argsort(dest, kind="stable") + base
        np.testing.assert_array_equal(grouped, ref)
        # Boundary slices really do partition by destination.
        for w in range(7):
            lo, hi = boundaries[w], boundaries[w + 1]
            assert np.all(dest[grouped[lo:hi] - base] == w)


class TestChunkSourceInput:
    @pytest.mark.parametrize("mode", ["simulated"])
    def test_streaming_counts_equal_materialized(self, mode):
        spec = get_dataset("WP")
        source = spec.chunk_source(6_000, seed=7, chunk_size=1_000)
        result = run_runtime(
            source,
            make_partitioner("pkg", 4, seed=42),
            RuntimeConfig(mode=mode, chunk_size=1_000),
        )
        keys = source.materialize()
        replay = replay_stream(
            keys, make_partitioner("pkg", 4, seed=42), chunk_size=1_000
        )
        np.testing.assert_array_equal(result.worker_loads, replay.final_loads)
        assert result.processed == 6_000

    @needs_processes
    def test_streaming_process_backend(self):
        source = ArrayChunkSource(STREAM, chunk_size=2_048)
        result = run_runtime(
            source,
            make_partitioner("jbsq", 2, seed=42),
            RuntimeConfig(mode="process", chunk_size=2_048),
        )
        replay = replay_stream(
            STREAM, make_partitioner("jbsq", 2, seed=42), chunk_size=2_048
        )
        np.testing.assert_array_equal(result.worker_loads, replay.final_loads)

    def test_replay_stream_accepts_source_directly(self):
        source = ArrayChunkSource(STREAM[:4_000], chunk_size=512)
        from_source = replay_stream(
            source, make_partitioner("kg", 3, seed=5), chunk_size=512
        )
        from_array = replay_stream(
            STREAM[:4_000], make_partitioner("kg", 3, seed=5), chunk_size=512
        )
        np.testing.assert_array_equal(
            from_source.final_loads, from_array.final_loads
        )
        np.testing.assert_array_equal(
            from_source.imbalance_series, from_array.imbalance_series
        )
