"""Bench: regenerate Figure 2 (imbalance fraction: H vs G vs L5..L20)."""

from conftest import run_once

from repro.experiments import format_fig2, run_fig2


def test_fig2_local_estimation(benchmark, bench_config):
    rows = run_once(benchmark, run_fig2, bench_config)
    print("\n" + format_fig2(rows))

    def cell(dataset, tech, w):
        return next(
            r.average_imbalance_fraction
            for r in rows
            if r.dataset == dataset and r.technique == tech and r.num_workers == w
        )

    for dataset in ("WP", "TW", "CT", "LN1", "LN2"):
        # H orders of magnitude above the PKG variants at W = 5.
        assert cell(dataset, "H", 5) > 10 * cell(dataset, "L5", 5)
        # Local estimation within about one order of the global oracle.
        assert cell(dataset, "L5", 5) <= 10 * max(cell(dataset, "G", 5), 1e-9)
        # Insensitive to the number of sources (L5 vs L10 same ballpark).
        assert cell(dataset, "L10", 5) <= 5 * cell(dataset, "L5", 5) + 1e-9
