"""Bench: empirical verification of the Section IV theorems.

Runs the chromatic Greedy-d process on the extremal distribution
(uniform over 5n colors) and checks the Theorem 4.1 / 4.2 shapes:
d = 1 imbalance carries the ln n / ln ln n factor, d >= 2 is O(m/n).
"""

import math

from conftest import run_once

from repro.analysis import ChromaticBallsAndBins, imbalance_upper_bound


def run_process(n, m, d, seeds=(0, 1, 2)):
    return [
        ChromaticBallsAndBins(n, d, seed=s).run(m).imbalance for s in seeds
    ]


def test_theorem41_shapes(benchmark):
    n, m = 50, 250_000  # m >= n^2, p1 = 1/(5n) boundary case

    def run():
        return {
            1: run_process(n, m, 1),
            2: run_process(n, m, 2),
            3: run_process(n, m, 3),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    mean = lambda xs: sum(xs) / len(xs)
    one, two, three = mean(results[1]), mean(results[2]), mean(results[3])
    print(
        f"\nGreedy-d imbalance (n={n}, m={m}): "
        f"d=1 {one:.0f}, d=2 {two:.0f}, d=3 {three:.0f}; "
        f"m/n = {m / n:.0f}"
    )

    # d = 2 is O(m/n) with a small constant (Theorem 4.1).
    assert two <= 2.0 * m / n
    # d = 1 is strictly worse than d >= 2 (the exponential gap).
    assert one > 10 * two
    # d = 3 also satisfies the d >= 2 bound; it can only improve on
    # d = 2 by a bounded amount (both are tiny relative to d = 1).
    assert three <= 2.0 * m / n
    assert three <= two + m / n
    # The closed-form bound helper orders the same way.
    assert imbalance_upper_bound(m, n, 1) > imbalance_upper_bound(m, n, 2)
