"""Shared fixtures for the benchmark suite.

Every paper table/figure has one bench module.  Benches run the same
harnesses as ``python -m repro.experiments`` at a reduced scale chosen
so the full suite completes in minutes; rerun the CLI at ``--scale 1``
for the EXPERIMENTS.md numbers.  Each bench *asserts the paper's
qualitative claim* so a regression in any algorithm fails the suite.
"""

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def bench_config():
    """Reduced-scale configuration shared by the table/figure benches."""
    return ExperimentConfig(
        scale=0.1,
        workers=(5, 10, 50, 100),
        sources=(5, 10),
        num_checkpoints=30,
        cluster_duration=6.0,
        cluster_warmup=1.5,
    )


@pytest.fixture(scope="session")
def micro_config():
    """Even smaller configuration for per-iteration micro benches."""
    return ExperimentConfig(
        scale=0.02,
        workers=(5, 10),
        sources=(5,),
        num_checkpoints=10,
        cluster_duration=3.0,
        cluster_warmup=1.0,
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
