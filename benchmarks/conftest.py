"""Shared fixtures for the benchmark suite.

Every paper table/figure has one bench module.  Benches run the same
harnesses as ``python -m repro.experiments`` at a reduced scale chosen
so the full suite completes in minutes; the committed EXPERIMENTS.md
numbers come from persisted artifacts instead (regenerate with
``python -m repro.reports run`` / ``render``).  Each bench *asserts the
paper's qualitative claim* so a regression in any algorithm fails the
suite.

After a full pytest-benchmark session the measured timings are also
snapshotted into ``BENCH_partitioners.json`` / ``BENCH_experiments.json``
at the repo root (same writers as ``python -m repro.reports bench``),
so the perf trajectory accumulates in git history.
"""

from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def bench_config():
    """Reduced-scale configuration shared by the table/figure benches."""
    return ExperimentConfig(
        scale=0.1,
        workers=(5, 10, 50, 100),
        sources=(5, 10),
        num_checkpoints=30,
        cluster_duration=6.0,
        cluster_warmup=1.5,
    )


@pytest.fixture(scope="session")
def micro_config():
    """Even smaller configuration for per-iteration micro benches."""
    return ExperimentConfig(
        scale=0.02,
        workers=(5, 10),
        sources=(5,),
        num_checkpoints=10,
        cluster_duration=3.0,
        cluster_warmup=1.0,
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


#: bench modules whose timings go into BENCH_partitioners.json; every
#: other bench lands in BENCH_experiments.json.
_PARTITIONER_SUITE_MODULES = ("bench_partitioner_throughput",)


def pytest_sessionfinish(session, exitstatus):
    """Snapshot pytest-benchmark timings into BENCH_*.json at repo root.

    Best-effort by design: only runs when benchmarks actually executed
    (not under ``--collect-only`` / failed sessions) and never turns a
    green bench run red.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or exitstatus != 0:
        return
    try:
        from repro.reports.bench import merge_bench_results, write_bench_snapshot

        suites = {"partitioners": [], "experiments": []}
        for bench in bench_session.benchmarks:
            stats = getattr(bench, "stats", None)
            if stats is None:
                continue
            module = bench.fullname.split("::")[0]
            suite = (
                "partitioners"
                if any(m in module for m in _PARTITIONER_SUITE_MODULES)
                else "experiments"
            )
            suites[suite].append(
                {
                    "name": bench.name,
                    "duration_seconds": stats.mean,
                    "rounds": stats.rounds,
                }
            )
        root = Path(__file__).resolve().parent.parent
        for suite, results in suites.items():
            if results:
                # Merge so a partial run (one module, -k subset) updates
                # its own entries without erasing the rest of the
                # committed trajectory.
                merged = merge_bench_results(suite, results, directory=root)
                path = write_bench_snapshot(
                    suite, merged, directory=root, source="pytest-benchmark"
                )
                print(f"\n[bench] wrote {path} ({len(merged)} entries)")
    except Exception as exc:  # pragma: no cover - snapshot must not fail CI
        print(f"\n[bench] could not write BENCH snapshots: {exc!r}")
