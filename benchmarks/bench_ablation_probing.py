"""Ablation bench: probing frequency.

Paper (Q2): replacing local estimates with the true loads every probe
period does not improve balance, at any frequency -- local estimation
alone suffices.
"""

from conftest import run_once

from repro.experiments import format_probing, run_probing_ablation


def test_probing_ablation(benchmark, bench_config):
    rows = run_once(
        benchmark,
        run_probing_ablation,
        bench_config,
        periods_minutes=(0.0, 0.5, 1.0, 5.0),
    )
    print("\n" + format_probing(rows))
    local = next(r for r in rows if r.probe_period == 0.0)
    for r in rows:
        if r.probe_period > 0:
            # No probing frequency beats local estimation by more than
            # noise -- the overhead buys nothing.
            assert r.average_imbalance_fraction > local.average_imbalance_fraction / 10
