"""Bench: regenerate Figure 5(b) (throughput vs memory per agg period).

Paper's shape: at every aggregation period PKG achieves higher
throughput than SG with lower memory; short periods depress PKG below
the KG reference, which PKG overtakes as the period grows.
"""

from conftest import run_once

from repro.experiments import format_fig5b, run_fig5b


def test_fig5b_throughput_vs_memory(benchmark, micro_config):
    periods = (1.0, 4.0)
    rows = run_once(benchmark, run_fig5b, micro_config, periods=periods)
    print("\n" + format_fig5b(rows))

    def row(scheme, period):
        return next(
            r for r in rows if r.scheme == scheme and r.aggregation_period == period
        )

    for period in periods:
        pkg, sg = row("PKG", period), row("SG", period)
        assert pkg.throughput >= 0.9 * sg.throughput
        assert pkg.average_memory_counters < sg.average_memory_counters

    # Longer periods -> more worker memory, fewer aggregation messages.
    assert (
        row("PKG", 1.0).average_memory_counters
        < row("PKG", 4.0).average_memory_counters
    )
    assert row("PKG", 1.0).aggregation_messages > row("PKG", 4.0).aggregation_messages
