"""Bench: regenerate Figure 4 (uniform vs skewed source splits, LJ)."""

from conftest import run_once

from repro.experiments import format_fig4, run_fig4


def test_fig4_robustness_to_skewed_sources(benchmark, bench_config):
    rows = run_once(benchmark, run_fig4, bench_config)
    print("\n" + format_fig4(rows))

    def cell(split, s, w):
        return next(
            r.average_imbalance_fraction
            for r in rows
            if r.split == split and r.num_sources == s and r.num_workers == w
        )

    for s in bench_config.sources:
        for w in bench_config.workers:
            uniform, skewed = cell("uniform", s, w), cell("skewed", s, w)
            # Paper: the skewed split performs like the uniform one.
            assert skewed <= 3 * uniform + 1e-6
            # Absolute imbalance stays tiny in the feasible regime.
            if w <= 10:
                assert skewed < 1e-3
