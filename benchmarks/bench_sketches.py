"""Micro-bench: sketch substrate throughput (SPACESAVING, histograms).

Engineering benches for the Section VI building blocks: per-item costs
must stay flat so the applications scale to long streams.
"""

import numpy as np

from repro.sketches import SpaceSaving, StreamingHistogram
from repro.streams.distributions import ZipfKeyDistribution

ITEMS = ZipfKeyDistribution(1.2, 5_000).sample(
    50_000, np.random.default_rng(1)
).tolist()
POINTS = np.random.default_rng(2).normal(0.0, 1.0, 20_000).tolist()


def test_spacesaving_offer_throughput(benchmark):
    def run():
        ss = SpaceSaving(256)
        ss.extend(ITEMS)
        return ss

    ss = benchmark.pedantic(run, rounds=3, iterations=1)
    assert ss.total == len(ITEMS)


def test_spacesaving_merge_throughput(benchmark):
    a, b = SpaceSaving(256), SpaceSaving(256)
    half = len(ITEMS) // 2
    a.extend(ITEMS[:half])
    b.extend(ITEMS[half:])

    merged = benchmark(lambda: a.merge(b))
    assert merged.total == len(ITEMS)


def test_histogram_update_throughput(benchmark):
    def run():
        h = StreamingHistogram(64)
        h.extend(POINTS)
        return h

    h = benchmark.pedantic(run, rounds=3, iterations=1)
    assert h.total == len(POINTS)


def test_histogram_merge_throughput(benchmark):
    a, b = StreamingHistogram(64), StreamingHistogram(64)
    half = len(POINTS) // 2
    a.extend(POINTS[:half])
    b.extend(POINTS[half:])

    merged = benchmark(lambda: a.merge(b))
    assert merged.total == len(POINTS)


def test_histogram_uniform_throughput(benchmark):
    h = StreamingHistogram(64)
    h.extend(POINTS)
    points = benchmark(lambda: h.uniform(10))
    assert len(points) == 9
