"""Ablation bench: number of hash choices d.

Paper (Section III): two choices give an exponential improvement over
one; more than two only a constant factor.  This is the design choice
behind PKG's d = 2.
"""

from conftest import run_once

from repro.experiments import format_dchoices, run_dchoices_ablation


def test_dchoices_ablation(benchmark, bench_config):
    rows = run_once(
        benchmark, run_dchoices_ablation, bench_config, choices=(1, 2, 3, 4)
    )
    print("\n" + format_dchoices(rows))
    by = {r.num_choices: r.average_imbalance_fraction for r in rows}
    # d = 1 (hashing) orders of magnitude worse than d = 2 (PKG).
    assert by[1] > 50 * by[2]
    # d > 2: constant-factor improvements only.
    assert by[3] > by[2] / 10
    assert by[4] > by[2] / 10
