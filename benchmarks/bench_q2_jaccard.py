"""Bench: the Q2 Jaccard observation (G vs L agree on ~47% of routes)."""

from conftest import run_once

from repro.experiments import format_jaccard, run_jaccard


def test_q2_jaccard_overlap(benchmark, bench_config):
    row = run_once(benchmark, run_jaccard, bench_config)
    print("\n" + format_jaccard(row))
    # Different local minima: well below full agreement...
    assert row.jaccard < 0.85
    # ...but both routings balance equally well.
    assert row.imbalance_fraction_local <= 10 * max(
        row.imbalance_fraction_global, 1e-9
    )
