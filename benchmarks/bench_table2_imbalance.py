"""Bench: regenerate Table II (avg imbalance per scheme, WP and TW).

Paper's shape: Hashing >> PoTC >= On-Greedy >= Off-Greedy ~ PKG at
feasible worker counts; everything collapses beyond the O(1/p1) limit.
"""

from conftest import run_once

from repro.experiments import format_table2, run_table2


def test_table2_scheme_comparison(benchmark, bench_config):
    rows = run_once(benchmark, run_table2, bench_config)
    print("\n" + format_table2(rows))

    def cell(dataset, scheme, w):
        return next(
            r.average_imbalance
            for r in rows
            if r.dataset == dataset and r.scheme == scheme and r.num_workers == w
        )

    for dataset in ("WP", "TW"):
        # Feasible regime (W = 5): PKG near-perfect, hashing awful.
        assert cell(dataset, "PKG", 5) < cell(dataset, "H", 5) / 100
        assert cell(dataset, "PKG", 5) <= cell(dataset, "PoTC", 5)
        # PKG is competitive with the offline algorithm (paper: better).
        assert cell(dataset, "PKG", 5) <= 10 * max(cell(dataset, "Off-Greedy", 5), 1)
        # Collapse beyond the feasibility threshold.
        assert cell(dataset, "PKG", 100) > cell(dataset, "PKG", 5)
