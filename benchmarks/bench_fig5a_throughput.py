"""Bench: regenerate Figure 5(a) (cluster throughput vs CPU delay).

Paper's shape: PKG ~ SG > KG; KG saturates around 0.4 ms and loses
~60% of its throughput over the tenfold delay increase, PKG/SG ~37%;
KG's latency is substantially higher at saturation.
"""

from conftest import run_once

from repro.experiments import format_fig5a, run_fig5a
from repro.experiments.fig5a import degradations


def test_fig5a_throughput_vs_delay(benchmark, bench_config):
    rows = run_once(
        benchmark, run_fig5a, bench_config, delays=(0.1e-3, 0.4e-3, 1.0e-3)
    )
    print("\n" + format_fig5a(rows))

    def row(scheme, delay):
        return next(r for r in rows if r.scheme == scheme and r.cpu_delay == delay)

    # Low delay: spout-bound, all schemes equal.
    low = [row(s, 0.1e-3).throughput for s in ("KG", "SG", "PKG")]
    assert max(low) - min(low) < 0.05 * max(low)

    # High delay: KG clearly below PKG ~ SG.
    assert row("KG", 1.0e-3).throughput < 0.8 * row("PKG", 1.0e-3).throughput
    pkg, sg = row("PKG", 1.0e-3).throughput, row("SG", 1.0e-3).throughput
    assert abs(pkg - sg) < 0.1 * sg

    # Degradation over the sweep: KG worse than PKG/SG (paper: 60 vs 37%).
    degr = degradations(rows)
    assert degr["KG"] > degr["PKG"] + 0.1
    assert 0.2 < degr["PKG"] < 0.6

    # Latency: KG pays for its hot-worker queue.
    assert row("KG", 1.0e-3).mean_latency > 1.3 * row("PKG", 1.0e-3).mean_latency
