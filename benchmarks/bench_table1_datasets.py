"""Bench: regenerate Table I (dataset summary) and validate calibration."""

from conftest import run_once

from repro.experiments import format_table1, run_table1


def test_table1_dataset_generation(benchmark, bench_config):
    rows = run_once(benchmark, run_table1, bench_config)
    print("\n" + format_table1(rows))
    assert len(rows) == 8
    # The synthetic calibration must hit every published p1.
    for row in rows:
        assert row.p1_relative_error < 0.2, row.symbol
