"""Micro-bench: routing throughput of each partitioning scheme.

Not a paper figure -- an engineering bench guarding the hot path: PKG's
per-message routing must stay within a small factor of plain hashing,
or million-message simulations become impractical.
"""

import numpy as np
import pytest

from repro.api import make_partitioner
from repro.streams.distributions import ZipfKeyDistribution

KEYS = ZipfKeyDistribution(1.1, 10_000).sample(
    100_000, np.random.default_rng(0)
)


@pytest.mark.parametrize(
    "spec",
    ["kg", "sg", "pkg", "pkg:d=4"],
    ids=["KG", "SG", "PKG-d2", "PKG-d4"],
)
def test_route_chunk_throughput(benchmark, spec):
    partitioner = make_partitioner(spec, 16)

    def run():
        partitioner.reset()
        return partitioner.route_chunk(KEYS)

    routed = benchmark(run)
    assert routed.size == KEYS.size


@pytest.mark.parametrize(
    "spec",
    ["potc", "on-greedy"],
    ids=["PoTC", "On-Greedy"],
)
def test_table_based_scheme_throughput(benchmark, spec):
    keys = KEYS[:20_000]

    def run():
        partitioner = make_partitioner(spec, 16)
        return partitioner.route_chunk(keys)

    routed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert routed.size == keys.size
