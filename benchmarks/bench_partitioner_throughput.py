"""Micro-bench: routing throughput of each partitioning scheme.

Not a paper figure -- an engineering bench guarding the hot path: PKG's
per-message routing must stay within a small factor of plain hashing,
or million-message simulations become impractical.
"""

import numpy as np
import pytest

from repro.partitioning import (
    KeyGrouping,
    OnlineGreedy,
    PartialKeyGrouping,
    ShuffleGrouping,
    StaticPoTC,
)
from repro.streams.distributions import ZipfKeyDistribution

KEYS = ZipfKeyDistribution(1.1, 10_000).sample(
    100_000, np.random.default_rng(0)
)


@pytest.mark.parametrize(
    "make",
    [
        lambda: KeyGrouping(16),
        lambda: ShuffleGrouping(16),
        lambda: PartialKeyGrouping(16),
        lambda: PartialKeyGrouping(16, num_choices=4),
    ],
    ids=["KG", "SG", "PKG-d2", "PKG-d4"],
)
def test_route_stream_throughput(benchmark, make):
    partitioner = make()

    def run():
        partitioner.reset()
        return partitioner.route_stream(KEYS)

    routed = benchmark(run)
    assert routed.size == KEYS.size


@pytest.mark.parametrize(
    "make",
    [lambda: StaticPoTC(16), lambda: OnlineGreedy(16)],
    ids=["PoTC", "On-Greedy"],
)
def test_table_based_scheme_throughput(benchmark, make):
    keys = KEYS[:20_000]

    def run():
        partitioner = make()
        return partitioner.route_stream(keys)

    routed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert routed.size == keys.size
