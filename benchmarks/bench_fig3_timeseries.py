"""Bench: regenerate Figure 3 (imbalance fraction through time)."""

from conftest import run_once

from repro.experiments import format_fig3, run_fig3


def test_fig3_imbalance_through_time(benchmark, bench_config):
    series = run_once(benchmark, run_fig3, bench_config)
    print("\n" + format_fig3(series))
    by = {(s.dataset, s.num_workers, s.technique): s for s in series}

    for dataset, w in (("TW", 10), ("WP", 10), ("CT", 10)):
        g = by[(dataset, w, "G")]
        local = by[(dataset, w, "L5")]
        probing = by[(dataset, w, "L5P1")]
        # G and L5 comparable; probing adds nothing (paper's Q2 result).
        assert local.mean_fraction <= 10 * max(g.mean_fraction, 1e-9)
        assert probing.mean_fraction <= 10 * max(local.mean_fraction, 1e-9)
        # Imbalance fraction shrinks (or stays flat) as the stream grows.
        assert local.imbalance_fraction[-1] <= local.imbalance_fraction[0] * 10
