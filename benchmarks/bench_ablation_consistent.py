"""Ablation bench: hash-based vs consistent-hashing candidate selection.

The paper's Section VII suggests Chord-style replicas as an alternative
way to pick PKG's two candidates.  This bench checks that (a) the ring
variant balances like hash-PKG, and (b) it buys elasticity: removing a
worker relocates only ~2/W of the candidate sets instead of ~all.
"""

import numpy as np

from repro.partitioning import (
    ConsistentPartialKeyGrouping,
    KeyGrouping,
    PartialKeyGrouping,
)
from repro.simulation import simulate_stream
from repro.streams.distributions import ZipfKeyDistribution


def test_consistent_pkg_balance_and_elasticity(benchmark):
    dist = ZipfKeyDistribution(1.0, 5000)
    keys = dist.sample(60_000, np.random.default_rng(0))

    def run():
        return {
            "pkg": simulate_stream(keys, PartialKeyGrouping(10, seed=1)),
            "ch_pkg": simulate_stream(
                keys, ConsistentPartialKeyGrouping(10, seed=1)
            ),
            "kg": simulate_stream(keys, KeyGrouping(10, seed=1)),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\navg imbalance: "
        + "  ".join(f"{k}={v.average_imbalance:.1f}" for k, v in results.items())
    )
    # Ring-selected candidates balance comparably to hash candidates.
    assert results["ch_pkg"].average_imbalance < results["kg"].average_imbalance / 10

    # Elasticity: removing one of 10 workers moves few candidate sets.
    stable = ConsistentPartialKeyGrouping(10, seed=5)
    shrunk = ConsistentPartialKeyGrouping(10, seed=5)
    sample = [int(k) for k in np.unique(keys)[:2000]]
    before = {k: stable.candidates(k) for k in sample}
    shrunk.remove_worker(9)
    moved = sum(1 for k in sample if shrunk.candidates(k) != before[k])
    print(f"candidate sets moved after removing 1/10 workers: {moved / len(sample):.1%}")
    assert moved / len(sample) < 0.45
